//! Spatial partitioning of one [`System`](crate::system::System) for
//! barrier-stepped parallel simulation.
//!
//! The tile mesh is split into contiguous spans of cores and engines —
//! the components that dominate per-cycle work — while the hub (mesh, L2,
//! DROPLET, uncore queues, fault service, chaos plane) stays on the
//! conducting thread. Each simulated cycle is three phases:
//!
//! 1. **hub-pre** ([`System`] side): mesh deliveries are collected into
//!    per-partition [`Inbox`]es (flits crossing the cut carry cycle
//!    stamps via [`BoundaryChannel`]), due page-fault services complete,
//!    and the chaos plane turns injections into [`Command`]s.
//! 2. **partition** ([`phase2`], parallel): each partition applies its
//!    inbox, ticks its cores and engines against a read-only view of
//!    physical memory (stores are staged in [`WriteStage`]s), collects
//!    egress and reports into its [`PartitionOut`].
//! 3. **hub-post**: the hub replays every partition's egress in global
//!    component order, applies staged stores, ticks L2/DROPLET/mesh and
//!    advances time.
//!
//! Nothing in phase 2 depends on *when* a partition runs relative to its
//! siblings — partitions share no mutable state and the hub alone orders
//! their outputs — so the result is bit-exact at any partition count and
//! any worker count. The single-threaded steppers run the exact same
//! three phases over one partition list, making the equivalence hold by
//! shared code rather than by parallel re-derivation.

use maple_core::Engine;
use maple_cpu::desc::DescQueues;
use maple_cpu::{Core, CoreState};
use maple_mem::msg::{MemReq, MemResp};
use maple_mem::{PhysMem, WriteStage};
use maple_noc::boundary::BoundaryChannel;
use maple_sim::stats::Histogram;
use maple_sim::{Cycle, Horizon};
use maple_vm::{VAddr, VirtPage};

use crate::system::OCCUPANCY_SAMPLE_PERIOD;

/// A flit crossing the cut toward an engine tile.
#[derive(Debug, Clone, Copy)]
pub(crate) enum EngineMsg {
    /// An MMIO/memory request (core operation or L2 fill request path).
    Req(MemReq),
    /// A memory response (L2 fill completing an engine fetch).
    Resp(MemResp),
}

/// A hub decision applied inside the owning partition, in hub order,
/// before the cycle's ticks. Component indices are partition-local.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Command {
    /// A core page-fault service completed (`ok` = page mapped).
    CoreFaultServiced {
        /// Local core index.
        core: usize,
        /// Whether the faulting page could be mapped.
        ok: bool,
    },
    /// An engine page-fault service completed.
    EngineFaultServiced {
        /// Local engine index.
        engine: usize,
        /// Whether the faulting page could be mapped.
        ok: bool,
    },
    /// Chaos plane: driver re-initializes the engine mid-run.
    EngineReset {
        /// Local engine index.
        engine: usize,
    },
    /// TLB shootdown of one virtual page on every local core and engine
    /// (chaos injection, or the driver unmapping a retired engine).
    Shootdown {
        /// The page being shot down.
        vpn: VirtPage,
    },
    /// The MMIO watchdog re-injected a core's transaction; the stall it
    /// resolves is recovery work and must be attributed as such.
    NoteFaultRetry {
        /// Local core index.
        core: usize,
    },
}

/// Everything the hub hands a partition for one cycle.
#[derive(Debug, Default)]
pub(crate) struct Inbox {
    /// Responses crossing the cut toward local core tiles.
    pub core_resps: BoundaryChannel<(usize, MemResp)>,
    /// Requests/responses crossing the cut toward local engine tiles.
    pub engine_msgs: BoundaryChannel<(usize, EngineMsg)>,
    /// Hub decisions, in hub execution order.
    pub commands: Vec<Command>,
    /// Fast-path fence: the earliest future cycle at which the hub could
    /// inject a command into this partition (next scheduled chaos event
    /// or fault-service deadline). Core compute runs must not batch an
    /// instruction that would issue at or past it. Recomputed by the hub
    /// every phase 1; `None` when no boundary is pending (or the
    /// fast-path is off).
    pub fence: Option<Cycle>,
}

/// Everything a partition hands back to the hub after one cycle.
#[derive(Debug, Default)]
pub(crate) struct PartitionOut {
    /// Staged plain stores, one stage per local core, applied by the hub
    /// in global core order before the L2 tick.
    pub stages: Vec<WriteStage>,
    /// Outbound memory/MMIO requests per local core, in pop order.
    pub core_reqs: Vec<(usize, MemReq)>,
    /// Outbound fetch/prefetch requests per local engine, in pop order.
    pub engine_reqs: Vec<(usize, MemReq)>,
    /// Outbound engine responses (acks/data), in pop order.
    pub engine_resps: Vec<(usize, maple_mem::l2::OutboundResp)>,
    /// Cores that entered `Faulted` this cycle and need OS service, with
    /// the faulting address (the hub maps the page at service time).
    pub core_fault_dispatch: Vec<(usize, VAddr)>,
    /// Engines that raised a fault this cycle, with the faulting address.
    pub engine_fault_dispatch: Vec<(usize, VAddr)>,
    /// Local cores halted as of this cycle's end.
    pub halted: usize,
    /// Per-local-engine poisoned flags as of this cycle's end (the hub's
    /// chaos scan reads these mirrors next cycle, preserving the
    /// one-cycle lag of the sequential stepper).
    pub poisoned: Vec<bool>,
    /// Earliest future cycle any local component could act on, when the
    /// partition was asked to report one ([`Partition::report_horizon`]).
    pub horizon: Option<Cycle>,
}

impl PartitionOut {
    /// Clears the per-cycle collections (stage capacity is preserved).
    fn reset(&mut self) {
        for s in &mut self.stages {
            debug_assert!(s.is_empty(), "hub must apply stages every cycle");
        }
        self.core_reqs.clear();
        self.engine_reqs.clear();
        self.engine_resps.clear();
        self.core_fault_dispatch.clear();
        self.engine_fault_dispatch.clear();
        self.halted = 0;
        self.poisoned.clear();
        self.horizon = None;
    }
}

/// One spatial partition: a contiguous span of cores and engines plus
/// the per-component state only they touch.
#[derive(Debug)]
pub(crate) struct Partition {
    pub cores: Vec<Core>,
    pub engines: Vec<Engine>,
    /// DeSC queue pairs whose two cores both live here (the planner
    /// never cuts a pair), with the global queue index they came from.
    pub desc_queues: Vec<DescQueues>,
    pub desc_global: Vec<usize>,
    /// Local core index -> local DeSC queue index.
    pub desc_pair: Vec<Option<usize>>,
    pub faults_in_service: Vec<bool>,
    pub engine_fault_in_service: Vec<bool>,
    /// Per-local-engine, per-queue occupancy histograms.
    pub occupancy: Vec<Vec<Histogram>>,
    /// Whether phase 2 should compute a local event horizon (the
    /// skipping and partitioned steppers want one; the dense reference
    /// does not pay for it).
    pub report_horizon: bool,
    pub inbox: Inbox,
    pub out: PartitionOut,
}

impl Partition {
    /// Bulk-applies `n` skipped quiescent cycles to every local
    /// component (mirror of the hub's `skip_to` accounting).
    pub fn skip(&mut self, n: u64) {
        for core in &mut self.cores {
            core.skip(n);
        }
        for engine in &mut self.engines {
            engine.skip(n);
        }
    }
}

/// The contiguous-span partition plan: which global core/engine indices
/// each partition owns.
#[derive(Debug, Clone)]
pub(crate) struct SplitPlan {
    /// `core_starts[p]..core_starts[p + 1]` are partition `p`'s cores.
    pub core_starts: Vec<usize>,
    /// `engine_starts[p]..engine_starts[p + 1]` are its engines.
    pub engine_starts: Vec<usize>,
}

impl SplitPlan {
    /// Plans `n` partitions over `cores` loaded cores and `engines`
    /// engines. Spans are balanced (`p * count / n` boundaries) except
    /// that a core boundary landing inside a DeSC pair is pushed right
    /// until the pair is whole: the coupled queues are a shared mutable
    /// structure, so both ends must tick on the same worker.
    pub fn plan(n: usize, cores: usize, engines: usize, desc_pair: &[Option<usize>]) -> SplitPlan {
        assert!(n > 0, "at least one partition is required");
        let mut core_starts = Vec::with_capacity(n + 1);
        core_starts.push(0);
        for p in 1..n {
            let mut b = (p * cores / n).max(*core_starts.last().expect("non-empty"));
            while b < cores && cuts_desc_pair(b, desc_pair) {
                b += 1;
            }
            core_starts.push(b);
        }
        core_starts.push(cores);
        let engine_starts: Vec<usize> = (0..=n).map(|p| p * engines / n).collect();
        SplitPlan {
            core_starts,
            engine_starts,
        }
    }

    /// Plans `n` partitions over a clustered fabric: every boundary is
    /// snapped right to the next *cluster* boundary (`core_cuts` /
    /// `engine_cuts` are the component indices at which the owning
    /// cluster changes, each list ending with the component count), so a
    /// cluster's crossbar traffic never straddles two workers and the
    /// per-cluster MAPLE pool stays with its cores. The DeSC-pair rule
    /// still applies after snapping (pairs are placed within one cluster
    /// by layout, so this is belt-and-braces, not a new constraint).
    ///
    /// Bit-exactness never depends on where boundaries land — partitions
    /// share no mutable state — so alignment is purely a locality choice;
    /// it is pinned by tests because the *plan* must still be
    /// deterministic.
    pub fn plan_clustered(
        n: usize,
        cores: usize,
        engines: usize,
        desc_pair: &[Option<usize>],
        core_cuts: &[usize],
        engine_cuts: &[usize],
    ) -> SplitPlan {
        assert!(n > 0, "at least one partition is required");
        let snap = |target: usize, cuts: &[usize], count: usize| {
            cuts.iter().copied().find(|&c| c >= target).unwrap_or(count)
        };
        let mut core_starts = Vec::with_capacity(n + 1);
        core_starts.push(0);
        for p in 1..n {
            let ideal = (p * cores / n).max(*core_starts.last().expect("non-empty"));
            let mut b = snap(ideal, core_cuts, cores);
            while b < cores && cuts_desc_pair(b, desc_pair) {
                b += 1;
            }
            core_starts.push(b);
        }
        core_starts.push(cores);
        let mut engine_starts = Vec::with_capacity(n + 1);
        engine_starts.push(0);
        for p in 1..n {
            let ideal = (p * engines / n).max(*engine_starts.last().expect("non-empty"));
            engine_starts.push(snap(ideal, engine_cuts, engines));
        }
        engine_starts.push(engines);
        SplitPlan {
            core_starts,
            engine_starts,
        }
    }

    /// Total loaded cores covered by the plan.
    pub fn total_cores(&self) -> usize {
        *self.core_starts.last().expect("non-empty")
    }

    /// Total engines covered by the plan.
    pub fn total_engines(&self) -> usize {
        *self.engine_starts.last().expect("non-empty")
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.core_starts.len() - 1
    }

    /// Maps a global core index to `(partition, local index)`.
    pub fn core_owner(&self, i: usize) -> (usize, usize) {
        let p = self.core_starts.partition_point(|&s| s <= i) - 1;
        (p, i - self.core_starts[p])
    }

    /// Maps a global engine index to `(partition, local index)`.
    pub fn engine_owner(&self, e: usize) -> (usize, usize) {
        let p = self.engine_starts.partition_point(|&s| s <= e) - 1;
        (p, e - self.engine_starts[p])
    }
}

/// Whether a boundary placed before global core `b` separates two cores
/// sharing a DeSC queue pair.
fn cuts_desc_pair(b: usize, desc_pair: &[Option<usize>]) -> bool {
    desc_pair[..b]
        .iter()
        .flatten()
        .any(|left| desc_pair[b..].iter().flatten().any(|right| right == left))
}

/// Phase 2 of one simulated cycle, run inside the owning worker with a
/// read-only view of physical memory. The order mirrors the sequential
/// stepper exactly: deliveries, hub commands, core ticks, engine ticks,
/// egress collection, occupancy sampling, report.
pub(crate) fn phase2(p: &mut Partition, now: Cycle, mem: &PhysMem) {
    p.out.reset();

    // 1. Apply cut-link deliveries in hub (mesh) order.
    for (i, resp) in p.inbox.core_resps.import_ready(now) {
        p.cores[i].on_mem_resp(now, resp, mem);
    }
    for (e, msg) in p.inbox.engine_msgs.import_ready(now) {
        match msg {
            EngineMsg::Req(req) => p.engines[e].accept(now, req),
            EngineMsg::Resp(resp) => p.engines[e].on_mem_resp(now, resp, mem),
        }
    }

    // 2. Apply hub commands in hub execution order.
    for cmd in std::mem::take(&mut p.inbox.commands) {
        match cmd {
            Command::CoreFaultServiced { core, ok } => {
                if p.cores[core].state() == CoreState::Faulted {
                    if ok {
                        p.cores[core].resume_from_fault(now, 1);
                        p.faults_in_service[core] = false;
                    }
                    // !ok: the core stays Faulted and in service; the
                    // hang machinery reports it.
                } else {
                    p.faults_in_service[core] = false;
                }
            }
            Command::EngineFaultServiced { engine, ok } => {
                if p.engines[engine].fault().is_some() {
                    if ok {
                        p.engines[engine].resolve_fault();
                        p.engine_fault_in_service[engine] = false;
                    }
                } else {
                    // The fault cleared on its own (reset / MMIO fault
                    // resume) while the OS was busy.
                    p.engine_fault_in_service[engine] = false;
                }
            }
            Command::EngineReset { engine } => p.engines[engine].reset(),
            Command::Shootdown { vpn } => {
                for core in &mut p.cores {
                    core.tlb_shootdown(vpn);
                }
                for engine in &mut p.engines {
                    engine.tlb_shootdown(vpn);
                }
            }
            Command::NoteFaultRetry { core } => p.cores[core].note_fault_retry(),
        }
    }

    // 3. Tick cores (plain stores staged, not written), then engines.
    for i in 0..p.cores.len() {
        let dq = match p.desc_pair[i] {
            Some(k) => Some(&mut p.desc_queues[k]),
            None => None,
        };
        p.cores[i].tick(now, mem, &mut p.out.stages[i], dq, p.inbox.fence);
        if p.cores[i].state() == CoreState::Faulted && !p.faults_in_service[i] {
            p.faults_in_service[i] = true;
            let vaddr = p.cores[i].fault().expect("Faulted implies a fault").vaddr;
            p.out.core_fault_dispatch.push((i, vaddr));
        }
    }
    for e in 0..p.engines.len() {
        p.engines[e].tick(now, mem);
        if !p.engine_fault_in_service[e] {
            if let Some(fault) = p.engines[e].fault() {
                p.engine_fault_in_service[e] = true;
                p.out.engine_fault_dispatch.push((e, fault.vaddr));
            }
        }
    }

    // 4. Collect egress for the hub to replay in global order.
    for i in 0..p.cores.len() {
        while let Some(req) = p.cores[i].pop_mem_request() {
            p.out.core_reqs.push((i, req));
        }
    }
    for e in 0..p.engines.len() {
        while let Some(req) = p.engines[e].pop_mem_request() {
            p.out.engine_reqs.push((e, req));
        }
        while let Some(out) = p.engines[e].pop_response(now) {
            p.out.engine_resps.push((e, out));
        }
    }

    // 5. Occupancy sampling (hub-scheduled cycles; nothing after this
    //    point in the cycle touches engine data queues).
    if now.0.is_multiple_of(OCCUPANCY_SAMPLE_PERIOD) {
        for (e, hists) in p.occupancy.iter_mut().enumerate() {
            for (q, h) in hists.iter_mut().enumerate() {
                h.record(p.engines[e].queue(q as u8).occupancy() as u64);
            }
        }
    }

    // 6. Report.
    p.out.halted = p.cores.iter().filter(|c| c.is_halted()).count();
    p.out.poisoned.extend(p.engines.iter().map(Engine::is_poisoned));
    if p.report_horizon {
        p.out.horizon = local_horizon(p, now.plus(1));
    }
}

/// Earliest cycle at or after `next` any local component could act on.
/// Mirrors the component terms of the sequential horizon, with the same
/// early bail: a core ready to issue immediately pins the answer.
fn local_horizon(p: &Partition, next: Cycle) -> Option<Cycle> {
    let mut h = Horizon::IDLE;
    for core in &p.cores {
        h.observe(core.next_event(next));
        if h.earliest() == Some(next) {
            return Some(next);
        }
    }
    for engine in &p.engines {
        h.observe(engine.next_event(next));
        if h.earliest() == Some(next) {
            return Some(next);
        }
    }
    h.earliest()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_balances_contiguous_spans() {
        let plan = SplitPlan::plan(4, 8, 4, &[None; 8]);
        assert_eq!(plan.core_starts, vec![0, 2, 4, 6, 8]);
        assert_eq!(plan.engine_starts, vec![0, 1, 2, 3, 4]);
        assert_eq!(plan.core_owner(0), (0, 0));
        assert_eq!(plan.core_owner(5), (2, 1));
        assert_eq!(plan.engine_owner(3), (3, 0));
    }

    #[test]
    fn plan_never_cuts_a_desc_pair() {
        // Cores 1 and 2 share queue 0: the midpoint boundary (2) would
        // cut the pair, so it slides right to 3.
        let pairs = [None, Some(0), Some(0), None];
        let plan = SplitPlan::plan(2, 4, 2, &pairs);
        assert_eq!(plan.core_starts, vec![0, 3, 4]);
        let (pa, _) = plan.core_owner(1);
        let (pb, _) = plan.core_owner(2);
        assert_eq!(pa, pb, "paired cores share a partition");
    }

    #[test]
    fn plan_with_straddling_pair_degenerates_gracefully() {
        // A pair spanning cores 0 and 3 forces everything into one
        // partition; the other ends up empty rather than cutting it.
        let pairs = [Some(0), None, None, Some(0)];
        let plan = SplitPlan::plan(2, 4, 0, &pairs);
        assert_eq!(plan.core_starts, vec![0, 4, 4]);
        assert_eq!(plan.total_cores(), 4);
        assert_eq!(plan.partitions(), 2);
    }

    #[test]
    fn plan_yields_zero_engine_partitions_when_outnumbered() {
        // 4 partitions over 2 engines: partitions 0 and 2 have none.
        let plan = SplitPlan::plan(4, 4, 2, &[None; 4]);
        assert_eq!(plan.engine_starts, vec![0, 0, 1, 1, 2]);
        assert_eq!(plan.engine_owner(0), (1, 0));
        assert_eq!(plan.engine_owner(1), (3, 0));
    }

    #[test]
    fn clustered_plan_snaps_to_cluster_boundaries() {
        // 8 cores in clusters of 3/3/2 (cuts at 3, 6, 8): the balanced
        // midpoint (4) snaps right to the next cluster boundary (6).
        let plan = SplitPlan::plan_clustered(2, 8, 4, &[None; 8], &[3, 6, 8], &[2, 4]);
        assert_eq!(plan.core_starts, vec![0, 6, 8]);
        // Engine midpoint 2 is already a cut, so it stays.
        assert_eq!(plan.engine_starts, vec![0, 2, 4]);
    }

    #[test]
    fn clustered_plan_is_monotonic_with_sparse_cuts() {
        // One giant cluster: every interior boundary snaps to the end,
        // degenerating to a single working partition — never cutting the
        // cluster.
        let plan = SplitPlan::plan_clustered(4, 8, 0, &[None; 8], &[8], &[0]);
        assert_eq!(plan.core_starts, vec![0, 8, 8, 8, 8]);
        assert_eq!(plan.total_cores(), 8);
        assert_eq!(plan.partitions(), 4);
    }

    #[test]
    fn clustered_plan_still_respects_desc_pairs() {
        // Cores 2 and 3 share a queue; cluster cut at 3 would split
        // them, so the boundary slides right past the pair.
        let pairs = [None, None, Some(0), Some(0), None, None];
        let plan = SplitPlan::plan_clustered(2, 6, 0, &pairs, &[3, 6], &[0]);
        let (pa, _) = plan.core_owner(2);
        let (pb, _) = plan.core_owner(3);
        assert_eq!(pa, pb, "paired cores share a partition");
    }

    #[test]
    fn plan_handles_more_partitions_than_cores() {
        let plan = SplitPlan::plan(4, 2, 1, &[None; 2]);
        assert_eq!(plan.core_starts, vec![0, 0, 1, 1, 2]);
        assert_eq!(plan.total_cores(), 2);
        assert_eq!(plan.core_owner(0), (1, 0));
        assert_eq!(plan.core_owner(1), (3, 0));
    }
}
