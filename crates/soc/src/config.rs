//! SoC configurations: the paper's Table 2 (FPGA prototype) and Table 3
//! (simulated system), plus the knobs the sensitivity studies sweep.

use maple_baselines::droplet::DropletConfig;
use maple_core::MapleConfig;
use maple_cpu::CpuConfig;
use maple_mem::dram::DramConfig;
use maple_mem::l2::L2Config;
use maple_noc::{ClusterTopology, Coord};
use maple_sim::fault::FaultPlaneConfig;
use maple_trace::TraceConfig;

/// Physical base address of the MAPLE instance pages.
pub const MAPLE_PA_BASE: u64 = 0xF000_0000;

/// The two-level hierarchical fabric configuration (MemPool-style):
/// tiles grouped into clusters on single-cycle local crossbars, clusters
/// bridged by the global mesh, with an address-interleaved multi-bank L2
/// and per-cluster MAPLE pools.
///
/// A 1×1 cluster grid is the degenerate hierarchy: the SoC then builds
/// the historical flat mesh (same code path, byte-identical behavior),
/// so `Some(ClusterConfig::flat_equivalent(..))` and `None` simulate
/// identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Tiles each cluster must hold (the cluster sub-grid is the
    /// smallest square-ish grid with at least this capacity).
    pub tiles_per_cluster: usize,
    /// Clusters across the SoC.
    pub clusters_x: u16,
    /// Clusters down the SoC.
    pub clusters_y: u16,
    /// Crossbar grant-to-delivery latency (1 = single-cycle local
    /// switch, the paper-scale design point).
    pub xbar_latency: u64,
    /// Address-interleaved L2 banks; bank `b` lives in cluster `b`, so
    /// this must not exceed the cluster count.
    pub l2_banks: usize,
}

impl ClusterConfig {
    /// A `clusters_x` × `clusters_y` grid of clusters of at least
    /// `tiles_per_cluster` tiles each, with a single-cycle crossbar and
    /// one L2 bank per cluster.
    ///
    /// # Panics
    ///
    /// Panics when any dimension is zero.
    #[must_use]
    pub fn new(tiles_per_cluster: usize, clusters_x: u16, clusters_y: u16) -> Self {
        assert!(tiles_per_cluster > 0, "clusters need at least one tile");
        assert!(clusters_x > 0 && clusters_y > 0, "cluster grid must be non-empty");
        ClusterConfig {
            tiles_per_cluster,
            clusters_x,
            clusters_y,
            xbar_latency: 1,
            l2_banks: usize::from(clusters_x) * usize::from(clusters_y),
        }
    }

    /// Overrides the number of L2 banks (≥ 1, ≤ cluster count).
    #[must_use]
    pub fn with_l2_banks(mut self, banks: usize) -> Self {
        self.l2_banks = banks;
        self
    }

    /// Overrides the crossbar latency.
    #[must_use]
    pub fn with_xbar_latency(mut self, cycles: u64) -> Self {
        self.xbar_latency = cycles;
        self
    }

    /// Number of clusters.
    #[must_use]
    pub fn clusters(&self) -> usize {
        usize::from(self.clusters_x) * usize::from(self.clusters_y)
    }

    /// The cluster sub-grid shape: the smallest square-ish grid with at
    /// least `tiles_per_cluster` tiles (matches the square meshes
    /// [`SocConfig::with_cores`] builds, so a 1×1 cluster grid over an
    /// existing flat config reproduces its mesh exactly).
    #[must_use]
    pub fn cluster_shape(&self) -> (u16, u16) {
        let mut w = 1u16;
        while usize::from(w) * usize::from(w) < self.tiles_per_cluster {
            w += 1;
        }
        let h = self.tiles_per_cluster.div_ceil(usize::from(w)) as u16;
        (w, h)
    }

    /// The fabric topology this configuration describes.
    #[must_use]
    pub fn topology(&self) -> ClusterTopology {
        let (w, h) = self.cluster_shape();
        ClusterTopology::new(w, h, self.clusters_x, self.clusters_y)
    }
}

/// Complete system configuration.
#[derive(Debug, Clone)]
pub struct SocConfig {
    /// Mesh width in tiles (u16: kilotile fabrics exceed a u8 axis; see
    /// `maple_noc::MAX_NODES` for the hard ceiling).
    pub mesh_width: u16,
    /// Mesh height in tiles.
    pub mesh_height: u16,
    /// Number of core tiles.
    pub cores: usize,
    /// Number of MAPLE tiles.
    pub maples: usize,
    /// Core parameters (contains the L1 configuration).
    pub cpu: CpuConfig,
    /// Shared L2 parameters.
    pub l2: L2Config,
    /// DRAM parameters.
    pub dram: DramConfig,
    /// MAPLE engine parameters.
    pub maple: MapleConfig,
    /// Tile-to-NoC path latency (L1.5 + NoC encoder in OpenPiton terms),
    /// charged on every outbound message.
    pub uncore_latency: u64,
    /// Extra cycles added to the MAPLE pipelines, split between decode and
    /// respond — the Figure 15 communication-latency knob.
    pub maple_extra_latency: u64,
    /// OS page-fault service time in cycles.
    pub fault_latency: u64,
    /// Optional DROPLET memory-side prefetcher at the L2.
    pub droplet: Option<DropletConfig>,
    /// Capacity of DeSC coupled queues when a pair is enabled.
    pub desc_queue_capacity: usize,
    /// Explicit MAPLE tile coordinates, overriding the default packing —
    /// the Section 5.3 placement discussion ("MAPLE instances are often
    /// scattered across the X and Y tile axes so that MAPLE are near
    /// cores").
    pub maple_tile_override: Option<Vec<(u16, u16)>>,
    /// Two-level hierarchical fabric (clusters on local crossbars bridged
    /// by the global mesh, banked L2, per-cluster MAPLE pools). `None`
    /// (the default) is the historical flat mesh; a 1×1 cluster grid is
    /// byte-identical to it by construction (DESIGN.md §14).
    pub cluster: Option<ClusterConfig>,
    /// Deterministic fault-injection plane; `None` (the default) keeps
    /// every run fault-free and timing-identical to a build without the
    /// plane.
    pub fault: Option<FaultPlaneConfig>,
    /// Cycle-level event tracing; `None` (the default) records nothing
    /// and is cycle-identical to a traced run (tracing is pure
    /// observation).
    pub trace: Option<TraceConfig>,
    /// Drive `System::run` with the dense cycle-by-cycle reference loop
    /// instead of the event-horizon skipping scheduler. The two steppers
    /// are bit-exact by contract (enforced by the stepper differential
    /// suite); this switch exists for that suite and for host-throughput
    /// comparisons.
    pub dense_stepper: bool,
    /// Number of spatial partitions `System::run` shards the tile mesh
    /// into, each stepped by a `maple-fleet` worker with conservative
    /// synchronization at partition boundaries. `1` (the default) keeps
    /// the single-threaded steppers; any value is bit-exact with them by
    /// contract (enforced by the partitions×workers differential grid).
    /// Takes precedence over `dense_stepper` when greater than one.
    pub partitions: usize,
    /// Worker-thread cap for the partitioned stepper. `None` (the
    /// default) defers to `MAPLE_JOBS` / host parallelism via
    /// `maple_fleet::jobs_from_env`; tests pin it so a grid cell's worker
    /// count is independent of the environment.
    pub partition_workers: Option<usize>,
}

impl SocConfig {
    /// Table 2: the FPGA prototype — 2 Ariane cores, 1 MAPLE (1 KB
    /// scratchpad), 8 KB 4-way 2-cycle L1, 64 KB 8-way 30-cycle shared
    /// L2, 300-cycle DRAM.
    #[must_use]
    pub fn fpga_prototype() -> Self {
        SocConfig {
            mesh_width: 2,
            mesh_height: 2,
            cores: 2,
            maples: 1,
            cpu: CpuConfig::default(),
            l2: L2Config::default(),
            dram: DramConfig::default(),
            maple: MapleConfig::default(),
            uncore_latency: 7,
            maple_extra_latency: 0,
            fault_latency: 1200,
            droplet: None,
            desc_queue_capacity: 32,
            maple_tile_override: None,
            cluster: None,
            fault: None,
            trace: None,
            dense_stepper: false,
            partitions: 1,
            partition_workers: None,
        }
    }

    /// Table 3: the simulated system used for the prior-work comparison —
    /// identical memory timing, instruction window of 1.
    #[must_use]
    pub fn simulated_system() -> Self {
        // The two platforms intentionally share their timing parameters
        // (the paper matched the simulator to the SoC configuration).
        Self::fpga_prototype()
    }

    /// Scales the mesh and core count (threads share the single MAPLE, as
    /// in Figure 13).
    #[must_use]
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        let tiles = cores + 1 + self.maples;
        // Smallest square-ish mesh that fits.
        let mut w = 2u16;
        while usize::from(w) * usize::from(w) < tiles {
            w += 1;
        }
        self.mesh_width = w;
        self.mesh_height = w;
        self
    }

    /// Adds MAPLE instances (scaled experiments).
    #[must_use]
    pub fn with_maples(mut self, maples: usize) -> Self {
        self.maples = maples;
        let cores = self.cores;
        self.with_cores(cores)
    }

    /// Arranges the SoC as a two-level hierarchical fabric: tiles
    /// grouped into clusters on single-cycle local crossbars, clusters
    /// bridged by the global mesh, L2 banks interleaved across clusters
    /// by line address, and MAPLE instances pooled per cluster.
    ///
    /// The mesh dimensions are recomputed from the cluster grid (they
    /// remain the single source of truth for the global tile grid), and
    /// cores/MAPLEs are redistributed evenly across clusters by
    /// [`SocConfig::layout`]. A 1×1 cluster grid whose cluster shape
    /// matches the flat mesh simulates byte-identically to `None`.
    ///
    /// # Panics
    ///
    /// Panics when the bank count is zero or exceeds the cluster count,
    /// when the clusters cannot hold the configured components, or when
    /// a `maple_tile_override` is set (placement is cluster-derived in
    /// hierarchical fabrics).
    #[must_use]
    pub fn with_clusters(mut self, cluster: ClusterConfig) -> Self {
        assert!(
            cluster.l2_banks >= 1 && cluster.l2_banks <= cluster.clusters(),
            "l2_banks must be in 1..={} (one bank per cluster at most), got {}",
            cluster.clusters(),
            cluster.l2_banks
        );
        assert!(
            self.maple_tile_override.is_none(),
            "maple_tile_override and clustering are mutually exclusive: \
             hierarchical placement is derived from the cluster grid"
        );
        let (cw, ch) = cluster.cluster_shape();
        self.mesh_width = cluster.clusters_x * cw;
        self.mesh_height = cluster.clusters_y * ch;
        self.cluster = Some(cluster);
        // Surface capacity violations at configuration time.
        let _ = self.layout();
        self
    }

    /// Number of L2 banks (1 for flat configurations).
    #[must_use]
    pub fn n_l2_banks(&self) -> usize {
        self.cluster.map_or(1, |c| c.l2_banks)
    }

    /// The hierarchical fabric topology, when this configuration actually
    /// exercises the clustered NoC. A missing or 1×1 cluster grid returns
    /// `None`: the SoC then builds the plain flat mesh (the degenerate
    /// hierarchy is byte-identical to it by construction).
    #[must_use]
    pub fn fabric_topology(&self) -> Option<ClusterTopology> {
        self.cluster
            .filter(|c| c.clusters() > 1)
            .map(|c| c.topology())
    }

    /// Sets the Figure 15 communication-latency knob.
    #[must_use]
    pub fn with_maple_extra_latency(mut self, cycles: u64) -> Self {
        self.maple_extra_latency = cycles;
        self
    }

    /// Sets the queue shape (Section 5.3 queue-size sweep).
    #[must_use]
    pub fn with_queue_entries(mut self, entries: usize) -> Self {
        self.maple.default_entries = entries;
        // Keep the shipped 8-queue shape; shrink the count if the
        // scratchpad cannot hold 8 queues of this size.
        let bytes_per_queue = entries * usize::from(self.maple.default_entry_bytes);
        let max_queues = (self.maple.scratchpad_bytes as usize / bytes_per_queue).max(1);
        self.maple.queues = self.maple.queues.min(max_queues);
        self
    }

    /// Enables the DROPLET comparator.
    #[must_use]
    pub fn with_droplet(mut self, cfg: DropletConfig) -> Self {
        self.droplet = Some(cfg);
        self
    }

    /// Installs the deterministic fault-injection plane.
    #[must_use]
    pub fn with_fault_plane(mut self, fault: FaultPlaneConfig) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Enables cycle-level event tracing (see `maple-trace`). Traced runs
    /// are cycle-count identical to untraced ones — tracing only
    /// observes.
    #[must_use]
    pub fn with_tracing(mut self, trace: TraceConfig) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Selects the dense cycle-by-cycle reference stepper for
    /// `System::run` instead of the default event-horizon skipping
    /// scheduler. Bit-exact with the default (enforced by the stepper
    /// differential suite) — only host throughput differs.
    #[must_use]
    pub fn with_dense_stepper(mut self) -> Self {
        self.dense_stepper = true;
        self
    }

    /// Shards the tile mesh into `n` spatial partitions for
    /// `System::run`, each stepped by a `maple-fleet` worker with a
    /// deterministic barrier at partition boundaries. Bit-exact with the
    /// single-threaded steppers at any partition count and any worker
    /// count (enforced by the partitions×workers differential grid) —
    /// only host throughput changes.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    #[must_use]
    pub fn with_partitions(mut self, n: usize) -> Self {
        assert!(n > 0, "at least one partition is required");
        self.partitions = n;
        self
    }

    /// Enables the cores' compiled fast-path: straight-line compute runs
    /// execute in one tick with bulk cycle accounting
    /// (`maple_isa::fastpath`, DESIGN.md §12). Bit-exact with the
    /// interpreter on every stepper (enforced by the fast-path
    /// differential grid) — only host throughput changes.
    #[must_use]
    pub fn with_fast_path(mut self, enabled: bool) -> Self {
        self.cpu.fast_path = enabled;
        self
    }

    /// Pins the partitioned stepper's worker-thread count instead of
    /// deferring to `MAPLE_JOBS` / host parallelism. Worker count never
    /// affects simulated results (bit-exact by contract); this exists so
    /// the differential grid can sweep workers without touching the
    /// process environment.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero.
    #[must_use]
    pub fn with_partition_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "at least one worker is required");
        self.partition_workers = Some(workers);
        self
    }

    /// Content digest over every timing-relevant parameter of the
    /// configuration, for use as (part of) a fleet cache key.
    ///
    /// Covers the mesh shape, component counts, every `CpuConfig` /
    /// `L2Config` / `DramConfig` / `MapleConfig` / `DropletConfig` field,
    /// the SoC-level latencies, the queue capacity, tile placement
    /// overrides and the full fault plane. **Excludes `trace`**: tracing
    /// is pure observation and cycle-identical by construction (asserted
    /// by the trace test suite), so a traced and an untraced run share a
    /// cache entry. **Excludes `dense_stepper`, `partitions` and
    /// `partition_workers`** for the same reason: all steppers — dense,
    /// event-horizon skipping and partitioned-parallel — are bit-exact by
    /// contract (asserted by the stepper differential suites), so they
    /// share a cache entry. **Excludes `cpu.fast_path`** likewise: the
    /// compiled fast-path is bit-exact with the interpreter (asserted by
    /// the fast-path differential grid), so toggling it must not move the
    /// cache key.
    pub fn digest_into(&self, d: &mut maple_fleet::Digest) {
        d.u64(u64::from(self.mesh_width))
            .u64(u64::from(self.mesh_height))
            .usize(self.cores)
            .usize(self.maples);
        // CpuConfig, including the embedded L1.
        d.u64(self.cpu.l1.size_bytes)
            .usize(self.cpu.l1.ways)
            .u64(self.cpu.l1.hit_latency)
            .usize(self.cpu.l1.mshrs)
            .usize(self.cpu.l1.store_buffer)
            .usize(self.cpu.tlb_entries)
            .u64(self.cpu.ptw_read_latency)
            .u64(self.cpu.taken_branch_penalty)
            .usize(self.cpu.desc_outstanding)
            .u64(self.cpu.desc_queue_latency)
            .usize(self.cpu.mmio_store_outstanding);
        // L2Config.
        d.u64(self.l2.size_bytes)
            .usize(self.l2.ways)
            .u64(self.l2.latency)
            .u64(self.l2.uncached_decode_latency);
        // DramConfig.
        d.u64(self.dram.latency)
            .usize(self.dram.issue_per_cycle)
            .usize(self.dram.max_outstanding);
        // MapleConfig.
        d.usize(self.maple.queues)
            .u64(self.maple.scratchpad_bytes)
            .usize(self.maple.default_entries)
            .u64(u64::from(self.maple.default_entry_bytes))
            .u64(self.maple.decode_latency)
            .u64(self.maple.respond_latency)
            .usize(self.maple.tlb_entries)
            .u64(self.maple.ptw_read_latency)
            .usize(self.maple.lima_cmd_depth)
            .usize(self.maple.lima_chunks_inflight)
            .usize(self.maple.lima_rate);
        // SoC-level knobs.
        d.u64(self.uncore_latency)
            .u64(self.maple_extra_latency)
            .u64(self.fault_latency)
            .usize(self.desc_queue_capacity);
        d.bool(self.droplet.is_some());
        if let Some(droplet) = &self.droplet {
            d.u64(droplet.decode_delay).usize(droplet.max_per_line);
        }
        d.bool(self.maple_tile_override.is_some());
        if let Some(placement) = &self.maple_tile_override {
            d.usize(placement.len());
            for &(x, y) in placement {
                d.u64(u64::from(x)).u64(u64::from(y));
            }
        }
        d.bool(self.cluster.is_some());
        if let Some(cluster) = &self.cluster {
            d.usize(cluster.tiles_per_cluster)
                .u64(u64::from(cluster.clusters_x))
                .u64(u64::from(cluster.clusters_y))
                .u64(cluster.xbar_latency)
                .usize(cluster.l2_banks);
        }
        d.bool(self.fault.is_some());
        if let Some(fault) = &self.fault {
            fault.digest_into(d);
        }
    }

    /// Total tiles used by this configuration (every L2 bank occupies a
    /// tile; flat configurations have exactly one).
    #[must_use]
    pub fn tiles_used(&self) -> usize {
        self.cores + self.n_l2_banks() + self.maples
    }

    /// The fixed tile layout.
    ///
    /// Flat: cores first (row-major), then the L2 tile, then MAPLE
    /// tiles. Clustered: components are distributed cluster-major —
    /// cluster `c` gets an even share of the cores, L2 bank `c` (when
    /// `c < l2_banks`), and an even share of the MAPLEs, packed in that
    /// order onto the cluster's row-major local ports. With one cluster
    /// whose shape matches the flat mesh the two layouts coincide
    /// exactly (the byte-identity anchor of DESIGN.md §14).
    #[must_use]
    pub fn layout(&self) -> TileLayout {
        let nodes = usize::from(self.mesh_width) * usize::from(self.mesh_height);
        assert!(
            self.tiles_used() <= nodes,
            "{} tiles needed but the {}x{} mesh has {}",
            self.tiles_used(),
            self.mesh_width,
            self.mesh_height,
            nodes
        );
        let layout = match &self.cluster {
            Some(cluster) => self.clustered_layout(cluster),
            None => self.flat_layout(),
        };
        // Placements must not collide across components.
        for m in &layout.maple_tiles {
            assert!(
                !layout.l2_tiles.contains(m) && !layout.core_tiles.contains(m),
                "MAPLE tile {m} collides with another component"
            );
        }
        layout
    }

    fn flat_layout(&self) -> TileLayout {
        let coord = |idx: usize| {
            Coord::new(
                (idx % usize::from(self.mesh_width)) as u16,
                (idx / usize::from(self.mesh_width)) as u16,
            )
        };
        let default_tiles: Vec<Coord> =
            (0..self.maples).map(|i| coord(self.cores + 1 + i)).collect();
        let maple_tiles = match &self.maple_tile_override {
            Some(placement) => {
                assert_eq!(
                    placement.len(),
                    self.maples,
                    "placement must name every MAPLE instance"
                );
                placement.iter().map(|&(x, y)| Coord::new(x, y)).collect()
            }
            None => default_tiles,
        };
        TileLayout {
            core_tiles: (0..self.cores).map(coord).collect(),
            l2_tiles: vec![coord(self.cores)],
            maple_tiles,
        }
    }

    fn clustered_layout(&self, cluster: &ClusterConfig) -> TileLayout {
        let topo = cluster.topology();
        let n = topo.clusters();
        let share = |count: usize, c: usize| count / n + usize::from(c < count % n);
        let mut core_tiles = Vec::with_capacity(self.cores);
        let mut l2_tiles = Vec::with_capacity(cluster.l2_banks);
        let mut maple_tiles = Vec::with_capacity(self.maples);
        for c in 0..n {
            let cores_here = share(self.cores, c);
            let banks_here = usize::from(c < cluster.l2_banks);
            let maples_here = share(self.maples, c);
            let used = cores_here + banks_here + maples_here;
            assert!(
                used <= topo.tiles_per_cluster(),
                "cluster {c} needs {used} tiles but holds {}",
                topo.tiles_per_cluster()
            );
            let mut port = 0;
            for _ in 0..cores_here {
                core_tiles.push(topo.tile_at(c, port));
                port += 1;
            }
            if banks_here == 1 {
                l2_tiles.push(topo.tile_at(c, port));
                port += 1;
            }
            for _ in 0..maples_here {
                maple_tiles.push(topo.tile_at(c, port));
                port += 1;
            }
        }
        TileLayout {
            core_tiles,
            l2_tiles,
            maple_tiles,
        }
    }

    /// Physical base address of MAPLE instance `i`'s MMIO page.
    #[must_use]
    pub fn maple_page(&self, i: usize) -> u64 {
        MAPLE_PA_BASE + (i as u64) * maple_mem::PAGE_SIZE
    }
}

/// Where each component sits in the mesh.
#[derive(Debug, Clone)]
pub struct TileLayout {
    /// One coordinate per core.
    pub core_tiles: Vec<Coord>,
    /// One tile per L2 bank + its memory-controller slice; flat
    /// configurations have exactly one.
    pub l2_tiles: Vec<Coord>,
    /// One coordinate per MAPLE instance.
    pub maple_tiles: Vec<Coord>,
}

impl TileLayout {
    /// The single L2 tile of a flat (unbanked) configuration.
    ///
    /// # Panics
    ///
    /// Panics when the layout has more than one bank — callers that can
    /// see banked configurations must index `l2_tiles` explicitly.
    #[must_use]
    pub fn l2_tile(&self) -> Coord {
        assert_eq!(self.l2_tiles.len(), 1, "banked layout has no single L2 tile");
        self.l2_tiles[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpga_prototype_matches_table2() {
        let c = SocConfig::fpga_prototype();
        assert_eq!(c.cores, 2);
        assert_eq!(c.maples, 1);
        assert_eq!(c.cpu.l1.size_bytes, 8 * 1024);
        assert_eq!(c.cpu.l1.ways, 4);
        assert_eq!(c.cpu.l1.hit_latency, 2);
        assert_eq!(c.l2.size_bytes, 64 * 1024);
        assert_eq!(c.l2.ways, 8);
        assert_eq!(c.l2.latency, 30);
        assert_eq!(c.dram.latency, 300);
        assert_eq!(c.maple.scratchpad_bytes, 1024);
        assert_eq!(c.maple.queues, 8);
        assert_eq!(c.maple.default_entries, 32);
    }

    #[test]
    fn layout_is_disjoint() {
        let c = SocConfig::fpga_prototype();
        let l = c.layout();
        assert_eq!(l.core_tiles.len(), 2);
        assert_eq!(l.maple_tiles.len(), 1);
        let mut all = l.core_tiles.clone();
        all.extend(&l.l2_tiles);
        all.extend(&l.maple_tiles);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(all.len(), dedup.len(), "tiles must not overlap");
    }

    #[test]
    fn with_cores_grows_mesh() {
        let c = SocConfig::fpga_prototype().with_cores(8);
        assert!(c.tiles_used() <= usize::from(c.mesh_width) * usize::from(c.mesh_height));
        let _ = c.layout();
    }

    #[test]
    fn queue_entries_respect_scratchpad() {
        let c = SocConfig::fpga_prototype().with_queue_entries(64);
        // 64 × 4 B = 256 B per queue → at most 4 queues in 1 KB.
        assert_eq!(c.maple.queues, 4);
        assert_eq!(c.maple.default_entries, 64);
    }

    #[test]
    fn digest_tracks_timing_edits_but_not_tracing() {
        let key = |c: &SocConfig| {
            let mut d = maple_fleet::Digest::new(0);
            c.digest_into(&mut d);
            d.finish()
        };
        let base = SocConfig::fpga_prototype();
        assert_eq!(key(&base), key(&base.clone()), "digest is deterministic");

        let mut dram_bumped = base.clone();
        dram_bumped.dram.latency += 1;
        assert_ne!(key(&base), key(&dram_bumped), "DRAM latency participates");

        let edits: Vec<SocConfig> = vec![
            base.clone().with_cores(4),
            base.clone().with_maples(2),
            base.clone().with_maple_extra_latency(32),
            base.clone().with_queue_entries(16),
            base.clone().with_droplet(DropletConfig::default()),
            base.clone()
                .with_fault_plane(FaultPlaneConfig::new(1).with_noc_drop(0.1)),
        ];
        for (i, edited) in edits.iter().enumerate() {
            assert_ne!(key(&base), key(edited), "edit {i} must move the key");
        }

        let traced = base.clone().with_tracing(TraceConfig::default());
        assert_eq!(key(&base), key(&traced), "tracing is pure observation");

        let partitioned = base.clone().with_partitions(4);
        assert_eq!(
            key(&base),
            key(&partitioned),
            "the partitioned stepper is bit-exact, so it shares cache keys"
        );
        let dense = base.clone().with_dense_stepper();
        assert_eq!(key(&base), key(&dense), "steppers share cache keys");
        let fast = base.clone().with_fast_path(true);
        assert_eq!(
            key(&base),
            key(&fast),
            "the compiled fast-path is bit-exact, so it shares cache keys"
        );
    }

    #[test]
    fn one_cluster_layout_matches_flat() {
        // The degenerate hierarchy: one cluster shaped exactly like the
        // flat mesh places every component on the same tile, so the two
        // configurations simulate byte-identically.
        let flat = SocConfig::fpga_prototype().with_cores(4);
        let tiles = usize::from(flat.mesh_width) * usize::from(flat.mesh_height);
        let clustered = flat.clone().with_clusters(ClusterConfig::new(tiles, 1, 1));
        assert_eq!(clustered.mesh_width, flat.mesh_width);
        assert_eq!(clustered.mesh_height, flat.mesh_height);
        assert!(clustered.fabric_topology().is_none(), "1 cluster rides the flat mesh");
        assert_eq!(clustered.n_l2_banks(), 1);
        let (fl, cl) = (flat.layout(), clustered.layout());
        assert_eq!(fl.core_tiles, cl.core_tiles);
        assert_eq!(fl.l2_tiles, cl.l2_tiles);
        assert_eq!(fl.maple_tiles, cl.maple_tiles);
    }

    #[test]
    fn clustered_layout_pools_components_per_cluster() {
        // 2×2 clusters of 2×2 tiles: 8 cores, 4 maples, 4 banks — every
        // cluster gets 2 cores, 1 bank, 1 maple on its own sub-grid.
        let mut cfg = SocConfig::fpga_prototype();
        cfg.cores = 8;
        cfg.maples = 4;
        let cfg = cfg.with_clusters(ClusterConfig::new(4, 2, 2));
        assert_eq!(cfg.mesh_width, 4);
        assert_eq!(cfg.mesh_height, 4);
        assert_eq!(cfg.n_l2_banks(), 4);
        let topo = cfg.fabric_topology().expect("2x2 clusters use the hierarchy");
        let l = cfg.layout();
        assert_eq!(l.core_tiles.len(), 8);
        assert_eq!(l.l2_tiles.len(), 4);
        assert_eq!(l.maple_tiles.len(), 4);
        for c in 0..4 {
            let in_cluster =
                |t: &&Coord| topo.cluster_index_of(**t) == c;
            assert_eq!(l.core_tiles.iter().filter(in_cluster).count(), 2);
            assert_eq!(l.l2_tiles.iter().filter(in_cluster).count(), 1);
            assert_eq!(l.maple_tiles.iter().filter(in_cluster).count(), 1);
        }
        // Bank b lives in cluster b (the address-interleaving contract).
        for (b, t) in l.l2_tiles.iter().enumerate() {
            assert_eq!(topo.cluster_index_of(*t), b);
        }
    }

    #[test]
    fn digest_tracks_cluster_knobs() {
        let key = |c: &SocConfig| {
            let mut d = maple_fleet::Digest::new(0);
            c.digest_into(&mut d);
            d.finish()
        };
        let mut base = SocConfig::fpga_prototype();
        base.cores = 8;
        base.maples = 4;
        let clustered = base.clone().with_clusters(ClusterConfig::new(4, 2, 2));
        assert_ne!(key(&base), key(&clustered), "clustering participates");
        let fewer_banks = base
            .clone()
            .with_clusters(ClusterConfig::new(4, 2, 2).with_l2_banks(2));
        assert_ne!(key(&clustered), key(&fewer_banks), "bank count participates");
        let slower_xbar = base
            .clone()
            .with_clusters(ClusterConfig::new(4, 2, 2).with_xbar_latency(3));
        assert_ne!(key(&clustered), key(&slower_xbar), "xbar latency participates");
        let wider = base.clone().with_clusters(ClusterConfig::new(4, 4, 1));
        assert_ne!(key(&clustered), key(&wider), "cluster grid participates");
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn clustering_rejects_tile_overrides() {
        let mut cfg = SocConfig::fpga_prototype();
        cfg.maple_tile_override = Some(vec![(1, 1)]);
        let _ = cfg.with_clusters(ClusterConfig::new(4, 1, 1));
    }

    #[test]
    #[should_panic(expected = "l2_banks")]
    fn clustering_rejects_excess_banks() {
        let _ = SocConfig::fpga_prototype()
            .with_clusters(ClusterConfig::new(4, 1, 1).with_l2_banks(2));
    }

    #[test]
    fn cluster_shape_is_square_ish() {
        assert_eq!(ClusterConfig::new(4, 2, 2).cluster_shape(), (2, 2));
        assert_eq!(ClusterConfig::new(9, 1, 1).cluster_shape(), (3, 3));
        assert_eq!(ClusterConfig::new(5, 1, 1).cluster_shape(), (3, 2));
        assert_eq!(ClusterConfig::new(1, 1, 1).cluster_shape(), (1, 1));
    }

    #[test]
    fn maple_pages_are_distinct() {
        let c = SocConfig::fpga_prototype().with_maples(3);
        assert_ne!(c.maple_page(0), c.maple_page(1));
        assert_eq!(c.maple_page(2) - c.maple_page(1), maple_mem::PAGE_SIZE);
    }
}
