//! SoC configurations: the paper's Table 2 (FPGA prototype) and Table 3
//! (simulated system), plus the knobs the sensitivity studies sweep.

use maple_baselines::droplet::DropletConfig;
use maple_core::MapleConfig;
use maple_cpu::CpuConfig;
use maple_mem::dram::DramConfig;
use maple_mem::l2::L2Config;
use maple_noc::Coord;
use maple_sim::fault::FaultPlaneConfig;
use maple_trace::TraceConfig;

/// Physical base address of the MAPLE instance pages.
pub const MAPLE_PA_BASE: u64 = 0xF000_0000;

/// Complete system configuration.
#[derive(Debug, Clone)]
pub struct SocConfig {
    /// Mesh width in tiles.
    pub mesh_width: u8,
    /// Mesh height in tiles.
    pub mesh_height: u8,
    /// Number of core tiles.
    pub cores: usize,
    /// Number of MAPLE tiles.
    pub maples: usize,
    /// Core parameters (contains the L1 configuration).
    pub cpu: CpuConfig,
    /// Shared L2 parameters.
    pub l2: L2Config,
    /// DRAM parameters.
    pub dram: DramConfig,
    /// MAPLE engine parameters.
    pub maple: MapleConfig,
    /// Tile-to-NoC path latency (L1.5 + NoC encoder in OpenPiton terms),
    /// charged on every outbound message.
    pub uncore_latency: u64,
    /// Extra cycles added to the MAPLE pipelines, split between decode and
    /// respond — the Figure 15 communication-latency knob.
    pub maple_extra_latency: u64,
    /// OS page-fault service time in cycles.
    pub fault_latency: u64,
    /// Optional DROPLET memory-side prefetcher at the L2.
    pub droplet: Option<DropletConfig>,
    /// Capacity of DeSC coupled queues when a pair is enabled.
    pub desc_queue_capacity: usize,
    /// Explicit MAPLE tile coordinates, overriding the default packing —
    /// the Section 5.3 placement discussion ("MAPLE instances are often
    /// scattered across the X and Y tile axes so that MAPLE are near
    /// cores").
    pub maple_tile_override: Option<Vec<(u8, u8)>>,
    /// Deterministic fault-injection plane; `None` (the default) keeps
    /// every run fault-free and timing-identical to a build without the
    /// plane.
    pub fault: Option<FaultPlaneConfig>,
    /// Cycle-level event tracing; `None` (the default) records nothing
    /// and is cycle-identical to a traced run (tracing is pure
    /// observation).
    pub trace: Option<TraceConfig>,
    /// Drive `System::run` with the dense cycle-by-cycle reference loop
    /// instead of the event-horizon skipping scheduler. The two steppers
    /// are bit-exact by contract (enforced by the stepper differential
    /// suite); this switch exists for that suite and for host-throughput
    /// comparisons.
    pub dense_stepper: bool,
    /// Number of spatial partitions `System::run` shards the tile mesh
    /// into, each stepped by a `maple-fleet` worker with conservative
    /// synchronization at partition boundaries. `1` (the default) keeps
    /// the single-threaded steppers; any value is bit-exact with them by
    /// contract (enforced by the partitions×workers differential grid).
    /// Takes precedence over `dense_stepper` when greater than one.
    pub partitions: usize,
    /// Worker-thread cap for the partitioned stepper. `None` (the
    /// default) defers to `MAPLE_JOBS` / host parallelism via
    /// `maple_fleet::jobs_from_env`; tests pin it so a grid cell's worker
    /// count is independent of the environment.
    pub partition_workers: Option<usize>,
}

impl SocConfig {
    /// Table 2: the FPGA prototype — 2 Ariane cores, 1 MAPLE (1 KB
    /// scratchpad), 8 KB 4-way 2-cycle L1, 64 KB 8-way 30-cycle shared
    /// L2, 300-cycle DRAM.
    #[must_use]
    pub fn fpga_prototype() -> Self {
        SocConfig {
            mesh_width: 2,
            mesh_height: 2,
            cores: 2,
            maples: 1,
            cpu: CpuConfig::default(),
            l2: L2Config::default(),
            dram: DramConfig::default(),
            maple: MapleConfig::default(),
            uncore_latency: 7,
            maple_extra_latency: 0,
            fault_latency: 1200,
            droplet: None,
            desc_queue_capacity: 32,
            maple_tile_override: None,
            fault: None,
            trace: None,
            dense_stepper: false,
            partitions: 1,
            partition_workers: None,
        }
    }

    /// Table 3: the simulated system used for the prior-work comparison —
    /// identical memory timing, instruction window of 1.
    #[must_use]
    pub fn simulated_system() -> Self {
        // The two platforms intentionally share their timing parameters
        // (the paper matched the simulator to the SoC configuration).
        Self::fpga_prototype()
    }

    /// Scales the mesh and core count (threads share the single MAPLE, as
    /// in Figure 13).
    #[must_use]
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        let tiles = cores + 1 + self.maples;
        // Smallest square-ish mesh that fits.
        let mut w = 2u8;
        while usize::from(w) * usize::from(w) < tiles {
            w += 1;
        }
        self.mesh_width = w;
        self.mesh_height = w;
        self
    }

    /// Adds MAPLE instances (scaled experiments).
    #[must_use]
    pub fn with_maples(mut self, maples: usize) -> Self {
        self.maples = maples;
        let cores = self.cores;
        self.with_cores(cores)
    }

    /// Sets the Figure 15 communication-latency knob.
    #[must_use]
    pub fn with_maple_extra_latency(mut self, cycles: u64) -> Self {
        self.maple_extra_latency = cycles;
        self
    }

    /// Sets the queue shape (Section 5.3 queue-size sweep).
    #[must_use]
    pub fn with_queue_entries(mut self, entries: usize) -> Self {
        self.maple.default_entries = entries;
        // Keep the shipped 8-queue shape; shrink the count if the
        // scratchpad cannot hold 8 queues of this size.
        let bytes_per_queue = entries * usize::from(self.maple.default_entry_bytes);
        let max_queues = (self.maple.scratchpad_bytes as usize / bytes_per_queue).max(1);
        self.maple.queues = self.maple.queues.min(max_queues);
        self
    }

    /// Enables the DROPLET comparator.
    #[must_use]
    pub fn with_droplet(mut self, cfg: DropletConfig) -> Self {
        self.droplet = Some(cfg);
        self
    }

    /// Installs the deterministic fault-injection plane.
    #[must_use]
    pub fn with_fault_plane(mut self, fault: FaultPlaneConfig) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Enables cycle-level event tracing (see `maple-trace`). Traced runs
    /// are cycle-count identical to untraced ones — tracing only
    /// observes.
    #[must_use]
    pub fn with_tracing(mut self, trace: TraceConfig) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Selects the dense cycle-by-cycle reference stepper for
    /// `System::run` instead of the default event-horizon skipping
    /// scheduler. Bit-exact with the default (enforced by the stepper
    /// differential suite) — only host throughput differs.
    #[must_use]
    pub fn with_dense_stepper(mut self) -> Self {
        self.dense_stepper = true;
        self
    }

    /// Shards the tile mesh into `n` spatial partitions for
    /// `System::run`, each stepped by a `maple-fleet` worker with a
    /// deterministic barrier at partition boundaries. Bit-exact with the
    /// single-threaded steppers at any partition count and any worker
    /// count (enforced by the partitions×workers differential grid) —
    /// only host throughput changes.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    #[must_use]
    pub fn with_partitions(mut self, n: usize) -> Self {
        assert!(n > 0, "at least one partition is required");
        self.partitions = n;
        self
    }

    /// Enables the cores' compiled fast-path: straight-line compute runs
    /// execute in one tick with bulk cycle accounting
    /// (`maple_isa::fastpath`, DESIGN.md §12). Bit-exact with the
    /// interpreter on every stepper (enforced by the fast-path
    /// differential grid) — only host throughput changes.
    #[must_use]
    pub fn with_fast_path(mut self, enabled: bool) -> Self {
        self.cpu.fast_path = enabled;
        self
    }

    /// Pins the partitioned stepper's worker-thread count instead of
    /// deferring to `MAPLE_JOBS` / host parallelism. Worker count never
    /// affects simulated results (bit-exact by contract); this exists so
    /// the differential grid can sweep workers without touching the
    /// process environment.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero.
    #[must_use]
    pub fn with_partition_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "at least one worker is required");
        self.partition_workers = Some(workers);
        self
    }

    /// Content digest over every timing-relevant parameter of the
    /// configuration, for use as (part of) a fleet cache key.
    ///
    /// Covers the mesh shape, component counts, every `CpuConfig` /
    /// `L2Config` / `DramConfig` / `MapleConfig` / `DropletConfig` field,
    /// the SoC-level latencies, the queue capacity, tile placement
    /// overrides and the full fault plane. **Excludes `trace`**: tracing
    /// is pure observation and cycle-identical by construction (asserted
    /// by the trace test suite), so a traced and an untraced run share a
    /// cache entry. **Excludes `dense_stepper`, `partitions` and
    /// `partition_workers`** for the same reason: all steppers — dense,
    /// event-horizon skipping and partitioned-parallel — are bit-exact by
    /// contract (asserted by the stepper differential suites), so they
    /// share a cache entry. **Excludes `cpu.fast_path`** likewise: the
    /// compiled fast-path is bit-exact with the interpreter (asserted by
    /// the fast-path differential grid), so toggling it must not move the
    /// cache key.
    pub fn digest_into(&self, d: &mut maple_fleet::Digest) {
        d.u64(u64::from(self.mesh_width))
            .u64(u64::from(self.mesh_height))
            .usize(self.cores)
            .usize(self.maples);
        // CpuConfig, including the embedded L1.
        d.u64(self.cpu.l1.size_bytes)
            .usize(self.cpu.l1.ways)
            .u64(self.cpu.l1.hit_latency)
            .usize(self.cpu.l1.mshrs)
            .usize(self.cpu.l1.store_buffer)
            .usize(self.cpu.tlb_entries)
            .u64(self.cpu.ptw_read_latency)
            .u64(self.cpu.taken_branch_penalty)
            .usize(self.cpu.desc_outstanding)
            .u64(self.cpu.desc_queue_latency)
            .usize(self.cpu.mmio_store_outstanding);
        // L2Config.
        d.u64(self.l2.size_bytes)
            .usize(self.l2.ways)
            .u64(self.l2.latency)
            .u64(self.l2.uncached_decode_latency);
        // DramConfig.
        d.u64(self.dram.latency)
            .usize(self.dram.issue_per_cycle)
            .usize(self.dram.max_outstanding);
        // MapleConfig.
        d.usize(self.maple.queues)
            .u64(self.maple.scratchpad_bytes)
            .usize(self.maple.default_entries)
            .u64(u64::from(self.maple.default_entry_bytes))
            .u64(self.maple.decode_latency)
            .u64(self.maple.respond_latency)
            .usize(self.maple.tlb_entries)
            .u64(self.maple.ptw_read_latency)
            .usize(self.maple.lima_cmd_depth)
            .usize(self.maple.lima_chunks_inflight)
            .usize(self.maple.lima_rate);
        // SoC-level knobs.
        d.u64(self.uncore_latency)
            .u64(self.maple_extra_latency)
            .u64(self.fault_latency)
            .usize(self.desc_queue_capacity);
        d.bool(self.droplet.is_some());
        if let Some(droplet) = &self.droplet {
            d.u64(droplet.decode_delay).usize(droplet.max_per_line);
        }
        d.bool(self.maple_tile_override.is_some());
        if let Some(placement) = &self.maple_tile_override {
            d.usize(placement.len());
            for &(x, y) in placement {
                d.u64(u64::from(x)).u64(u64::from(y));
            }
        }
        d.bool(self.fault.is_some());
        if let Some(fault) = &self.fault {
            fault.digest_into(d);
        }
    }

    /// Total tiles used by this configuration.
    #[must_use]
    pub fn tiles_used(&self) -> usize {
        self.cores + 1 + self.maples
    }

    /// The fixed tile layout: cores first (row-major), then the L2 tile,
    /// then MAPLE tiles.
    #[must_use]
    pub fn layout(&self) -> TileLayout {
        let nodes = usize::from(self.mesh_width) * usize::from(self.mesh_height);
        assert!(
            self.tiles_used() <= nodes,
            "{} tiles needed but the {}x{} mesh has {}",
            self.tiles_used(),
            self.mesh_width,
            self.mesh_height,
            nodes
        );
        let coord = |idx: usize| {
            Coord::new(
                (idx % usize::from(self.mesh_width)) as u8,
                (idx / usize::from(self.mesh_width)) as u8,
            )
        };
        let default_tiles: Vec<Coord> =
            (0..self.maples).map(|i| coord(self.cores + 1 + i)).collect();
        let maple_tiles = match &self.maple_tile_override {
            Some(placement) => {
                assert_eq!(
                    placement.len(),
                    self.maples,
                    "placement must name every MAPLE instance"
                );
                placement.iter().map(|&(x, y)| Coord::new(x, y)).collect()
            }
            None => default_tiles,
        };
        let layout = TileLayout {
            core_tiles: (0..self.cores).map(coord).collect(),
            l2_tile: coord(self.cores),
            maple_tiles,
        };
        // Overridden placements must not collide with cores or the L2.
        for m in &layout.maple_tiles {
            assert!(
                *m != layout.l2_tile && !layout.core_tiles.contains(m),
                "MAPLE tile {m} collides with another component"
            );
        }
        layout
    }

    /// Physical base address of MAPLE instance `i`'s MMIO page.
    #[must_use]
    pub fn maple_page(&self, i: usize) -> u64 {
        MAPLE_PA_BASE + (i as u64) * maple_mem::PAGE_SIZE
    }
}

/// Where each component sits in the mesh.
#[derive(Debug, Clone)]
pub struct TileLayout {
    /// One coordinate per core.
    pub core_tiles: Vec<Coord>,
    /// The shared L2 + memory-controller tile.
    pub l2_tile: Coord,
    /// One coordinate per MAPLE instance.
    pub maple_tiles: Vec<Coord>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpga_prototype_matches_table2() {
        let c = SocConfig::fpga_prototype();
        assert_eq!(c.cores, 2);
        assert_eq!(c.maples, 1);
        assert_eq!(c.cpu.l1.size_bytes, 8 * 1024);
        assert_eq!(c.cpu.l1.ways, 4);
        assert_eq!(c.cpu.l1.hit_latency, 2);
        assert_eq!(c.l2.size_bytes, 64 * 1024);
        assert_eq!(c.l2.ways, 8);
        assert_eq!(c.l2.latency, 30);
        assert_eq!(c.dram.latency, 300);
        assert_eq!(c.maple.scratchpad_bytes, 1024);
        assert_eq!(c.maple.queues, 8);
        assert_eq!(c.maple.default_entries, 32);
    }

    #[test]
    fn layout_is_disjoint() {
        let c = SocConfig::fpga_prototype();
        let l = c.layout();
        assert_eq!(l.core_tiles.len(), 2);
        assert_eq!(l.maple_tiles.len(), 1);
        let mut all = l.core_tiles.clone();
        all.push(l.l2_tile);
        all.extend(&l.maple_tiles);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(all.len(), dedup.len(), "tiles must not overlap");
    }

    #[test]
    fn with_cores_grows_mesh() {
        let c = SocConfig::fpga_prototype().with_cores(8);
        assert!(c.tiles_used() <= usize::from(c.mesh_width) * usize::from(c.mesh_height));
        let _ = c.layout();
    }

    #[test]
    fn queue_entries_respect_scratchpad() {
        let c = SocConfig::fpga_prototype().with_queue_entries(64);
        // 64 × 4 B = 256 B per queue → at most 4 queues in 1 KB.
        assert_eq!(c.maple.queues, 4);
        assert_eq!(c.maple.default_entries, 64);
    }

    #[test]
    fn digest_tracks_timing_edits_but_not_tracing() {
        let key = |c: &SocConfig| {
            let mut d = maple_fleet::Digest::new(0);
            c.digest_into(&mut d);
            d.finish()
        };
        let base = SocConfig::fpga_prototype();
        assert_eq!(key(&base), key(&base.clone()), "digest is deterministic");

        let mut dram_bumped = base.clone();
        dram_bumped.dram.latency += 1;
        assert_ne!(key(&base), key(&dram_bumped), "DRAM latency participates");

        let edits: Vec<SocConfig> = vec![
            base.clone().with_cores(4),
            base.clone().with_maples(2),
            base.clone().with_maple_extra_latency(32),
            base.clone().with_queue_entries(16),
            base.clone().with_droplet(DropletConfig::default()),
            base.clone()
                .with_fault_plane(FaultPlaneConfig::new(1).with_noc_drop(0.1)),
        ];
        for (i, edited) in edits.iter().enumerate() {
            assert_ne!(key(&base), key(edited), "edit {i} must move the key");
        }

        let traced = base.clone().with_tracing(TraceConfig::default());
        assert_eq!(key(&base), key(&traced), "tracing is pure observation");

        let partitioned = base.clone().with_partitions(4);
        assert_eq!(
            key(&base),
            key(&partitioned),
            "the partitioned stepper is bit-exact, so it shares cache keys"
        );
        let dense = base.clone().with_dense_stepper();
        assert_eq!(key(&base), key(&dense), "steppers share cache keys");
        let fast = base.clone().with_fast_path(true);
        assert_eq!(
            key(&base),
            key(&fast),
            "the compiled fast-path is bit-exact, so it shares cache keys"
        );
    }

    #[test]
    fn maple_pages_are_distinct() {
        let c = SocConfig::fpga_prototype().with_maples(3);
        assert_ne!(c.maple_page(0), c.maple_page(1));
        assert_eq!(c.maple_page(2) - c.maple_page(1), maple_mem::PAGE_SIZE);
    }
}
