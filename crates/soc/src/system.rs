//! The assembled SoC: cores, MAPLE engines, shared L2 and DRAM on a 2-D
//! mesh, with OS services and the experiment-facing control surface.
//!
//! A [`System`] is built from a [`SocConfig`], loaded with per-core
//! programs, and run to completion. Everything the paper's evaluation
//! needs hangs off this type: heap allocation (eager or demand-paged),
//! MAPLE instance mapping, DeSC core pairing, DROPLET configuration, and
//! statistics extraction.

use std::collections::{HashMap, VecDeque};

use maple_baselines::droplet::{DropletPrefetcher, IndirectWatch};
use maple_core::Engine;
use maple_cpu::desc::DescQueues;
use maple_cpu::{Core, CoreState};
use maple_isa::{Program, Reg};
use maple_mem::l2::SharedL2;
use maple_mem::msg::{MemReq, MemResp};
use maple_mem::phys::{PAddr, PhysMem, PAGE_SIZE};
use maple_noc::{Coord, Mesh, MeshConfig, NocFault};
use maple_sim::fault::{CoreHang, EngineHang, HangDiagnosis, WatchdogConfig};
use maple_sim::link::DelayQueue;
use maple_sim::stats::Counter;
use maple_sim::{Cycle, RunOutcome};
use maple_trace::{
    FaultSite, MetricsSnapshot, StallBreakdown, StallRow, TraceEvent, TraceRecord, Tracer,
};
use maple_vm::page_table::FrameAllocator;
use maple_vm::{VAddr, VirtPage};

use crate::config::{SocConfig, TileLayout, MAPLE_PA_BASE};
use crate::os::AddressSpace;

/// Messages carried by the NoC.
///
/// Flit counts are *not* duplicated here: the NoC serialization cost lives
/// solely in the (private) `OutMsg::flits` field and inside the mesh
/// packet, so a response's size has a single source of truth.
#[derive(Debug, Clone, Copy)]
pub enum NocPayload {
    /// A memory/MMIO request heading to the L2 tile or a MAPLE tile.
    Req(MemReq),
    /// A response heading back to a requester tile.
    Resp(MemResp),
}

#[derive(Debug)]
struct OutMsg {
    dst: Coord,
    flits: u8,
    payload: NocPayload,
}

#[derive(Debug, Clone, Copy)]
enum FaultTarget {
    Core(usize),
    Engine(usize),
}

/// One core-issued MMIO transaction under watchdog observation.
#[derive(Debug, Clone, Copy)]
struct MmioWatch {
    req: MemReq,
    issued: Cycle,
    retries: u32,
}

/// Counters for everything the chaos plane injected and the recovery
/// machinery did about it (the driver/uncore side; per-site counters live
/// in the mesh, DRAM and engine stats).
#[derive(Debug, Clone, Default)]
pub struct ChaosStats {
    /// Scheduled mid-run engine `RESET`s delivered.
    pub resets_injected: Counter,
    /// Randomly-timed engine TLB shootdowns delivered.
    pub shootdowns_injected: Counter,
    /// Core-issued MMIO transactions that overran their watchdog.
    pub mmio_timeouts: Counter,
    /// MMIO transactions re-injected after a timeout.
    pub mmio_retries: Counter,
    /// Engines the driver retired (unmapped) after poisoning.
    pub engines_poisoned: Counter,
    /// Page faults that could not be serviced (outside any lazy region);
    /// the faulting component stays stalled instead of panicking the
    /// simulator.
    pub unserviceable_faults: Counter,
}

/// Driver/uncore-level chaos state: scheduled events still to inject,
/// outstanding MMIO transactions under watchdog, and poison bookkeeping.
#[derive(Debug)]
struct ChaosState {
    /// Pending mid-run engine resets, sorted by cycle.
    resets: VecDeque<(u64, usize)>,
    /// Pending TLB shootdowns: `(cycle, raw random word)`, sorted.
    shootdowns: VecDeque<(u64, u64)>,
    /// Core-side MMIO watchdog policy.
    watchdog: WatchdogConfig,
    /// Outstanding MMIO transactions keyed by `(core, L1 txid)`.
    mmio_watch: HashMap<(usize, u64), MmioWatch>,
    /// Engines retired by the driver after poisoning.
    retired: Vec<bool>,
    /// User VA of each mapped engine page (recorded at `map_maple`),
    /// needed to unmap a poisoned instance.
    maple_vas: Vec<Option<VAddr>>,
    stats: ChaosStats,
}

impl ChaosState {
    /// Earliest cycle at or after `now` at which the chaos plane must run:
    /// the next scheduled reset or shootdown, or the earliest MMIO
    /// watchdog deadline. Schedules are sorted, so only heads matter; the
    /// watchdog deadline is a pure function of the watch entry, so a skip
    /// landing exactly on it reproduces the dense scan's decision.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut h = maple_sim::Horizon::IDLE;
        if let Some(&(at, _)) = self.resets.front() {
            h.at(Cycle(at.max(now.0)));
        }
        if let Some(&(at, _)) = self.shootdowns.front() {
            h.at(Cycle(at.max(now.0)));
        }
        for m in self.mmio_watch.values() {
            h.at(self.watchdog.deadline(m.issued, m.retries).max(now));
        }
        h.earliest()
    }
}

/// The assembled system.
pub struct System {
    cfg: SocConfig,
    layout: TileLayout,
    mem: PhysMem,
    frames: FrameAllocator,
    aspace: AddressSpace,
    mesh: Mesh<NocPayload>,
    cores: Vec<Core>,
    engines: Vec<Engine>,
    l2: SharedL2,
    droplet: Option<DropletPrefetcher>,
    desc_queues: Vec<DescQueues>,
    desc_pair: Vec<Option<usize>>,
    /// Per-tile outbound path: uncore delay then injection (with retry on
    /// backpressure, order-preserving).
    out_uncore: Vec<DelayQueue<OutMsg>>,
    out_retry: Vec<VecDeque<OutMsg>>,
    fault_service: DelayQueue<FaultTarget>,
    faults_in_service: Vec<bool>,
    engine_fault_in_service: Vec<bool>,
    /// Per-engine, per-queue occupancy samples (taken every
    /// [`OCCUPANCY_SAMPLE_PERIOD`] cycles).
    occupancy: Vec<Vec<maple_sim::stats::Histogram>>,
    /// Fault-injection plane state; `None` keeps the run fault-free with
    /// zero timing perturbation.
    chaos: Option<ChaosState>,
    /// Observability tracer handle; disabled unless
    /// [`SocConfig::with_tracing`] was used. Clones of this handle are
    /// installed in every core, engine, the mesh and the DRAM channel.
    tracer: Tracer,
    now: Cycle,
}

/// Cycles between queue-occupancy samples.
pub const OCCUPANCY_SAMPLE_PERIOD: u64 = 64;

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("cores", &self.cores.len())
            .field("engines", &self.engines.len())
            .field("now", &self.now)
            .finish()
    }
}

impl System {
    /// Builds an idle system from a configuration.
    #[must_use]
    pub fn new(cfg: SocConfig) -> Self {
        let layout = cfg.layout();
        let mut mem = PhysMem::new();
        // Frames live above the first 16 MB (reserved) within 1 GB DRAM.
        let mut frames = FrameAllocator::new(PAddr(0x100_0000), (1 << 30) - 0x100_0000);
        let aspace = AddressSpace::new(&mut mem, &mut frames);
        let mesh = Mesh::new(MeshConfig::new(cfg.mesh_width, cfg.mesh_height));
        let mut maple_cfg = cfg.maple;
        maple_cfg.decode_latency += cfg.maple_extra_latency / 2;
        maple_cfg.respond_latency += cfg.maple_extra_latency - cfg.maple_extra_latency / 2;
        let mut engines: Vec<Engine> = (0..cfg.maples).map(|_| Engine::new(maple_cfg)).collect();
        let mut l2 = SharedL2::new(cfg.l2, cfg.dram);
        let mut mesh = mesh;
        let tracer = cfg.trace.map_or_else(Tracer::disabled, Tracer::enabled);
        if tracer.is_enabled() {
            mesh.set_tracer(tracer.clone());
            l2.set_tracer(tracer.clone());
            for (e, engine) in engines.iter_mut().enumerate() {
                engine.set_tracer(e, tracer.clone());
            }
        }
        let droplet = cfg.droplet.map(DropletPrefetcher::new);
        let nodes = mesh.config().nodes();
        // Install the fault plane's per-site schedules and the driver-side
        // chaos state. All of this is skipped — and no RNG stream is ever
        // created or drawn — when `cfg.fault` is `None`.
        let chaos = cfg.fault.as_ref().map(|f| {
            mesh.set_fault(NocFault::from_plane(f));
            l2.set_dram_fault(f.dram_schedule());
            for (e, engine) in engines.iter_mut().enumerate() {
                engine.set_watchdog(f.engine_watchdog);
                engine.set_ack_fault(f.ack_loss_schedule(e as u64));
            }
            let mut resets: Vec<(u64, usize)> = f.engine_resets.clone();
            resets.sort_unstable();
            ChaosState {
                resets: resets.into(),
                shootdowns: f.shootdown_events().into(),
                watchdog: f.mmio_watchdog,
                mmio_watch: HashMap::new(),
                retired: vec![false; cfg.maples],
                maple_vas: vec![None; cfg.maples],
                stats: ChaosStats::default(),
            }
        });
        System {
            layout,
            mem,
            frames,
            aspace,
            mesh,
            cores: Vec::new(),
            engines,
            l2,
            droplet,
            desc_queues: Vec::new(),
            desc_pair: Vec::new(),
            out_uncore: (0..nodes).map(|_| DelayQueue::new()).collect(),
            out_retry: (0..nodes).map(|_| VecDeque::new()).collect(),
            fault_service: DelayQueue::new(),
            faults_in_service: Vec::new(),
            engine_fault_in_service: vec![false; cfg.maples],
            occupancy: (0..cfg.maples)
                .map(|_| vec![maple_sim::stats::Histogram::new(); maple_cfg.queues])
                .collect(),
            chaos,
            tracer,
            now: Cycle::ZERO,
            cfg,
        }
    }

    /// The configuration this system was built from.
    #[must_use]
    pub fn config(&self) -> &SocConfig {
        &self.cfg
    }

    // --- host-side memory services ---------------------------------------

    /// Allocates zeroed, eagerly-mapped heap memory.
    pub fn alloc(&mut self, bytes: u64) -> VAddr {
        self.aspace.alloc(&mut self.mem, &mut self.frames, bytes)
    }

    /// Allocates demand-paged heap memory (first touches fault).
    pub fn alloc_lazy(&mut self, bytes: u64) -> VAddr {
        self.aspace.alloc_lazy(bytes)
    }

    fn host_paddr(&mut self, va: VAddr) -> PAddr {
        if let Some(pa) = self.aspace.translate(&self.mem, va) {
            return pa;
        }
        // Host-side touch of a lazy page maps it (like the kernel writing
        // into a fresh mmap).
        assert!(
            self.aspace.handle_fault(&mut self.mem, &mut self.frames, va),
            "host access to unmapped address {va}"
        );
        self.aspace.translate(&self.mem, va).expect("just mapped")
    }

    /// Host write of a 64-bit word.
    pub fn write_u64(&mut self, va: VAddr, value: u64) {
        let pa = self.host_paddr(va);
        self.mem.write_u64(pa, value);
    }

    /// Host write of a 32-bit word.
    pub fn write_u32(&mut self, va: VAddr, value: u32) {
        let pa = self.host_paddr(va);
        self.mem.write_u32(pa, value);
    }

    /// Host read of a 64-bit word.
    pub fn read_u64(&mut self, va: VAddr) -> u64 {
        let pa = self.host_paddr(va);
        self.mem.read_u64(pa)
    }

    /// Host read of a 32-bit word.
    pub fn read_u32(&mut self, va: VAddr) -> u32 {
        let pa = self.host_paddr(va);
        self.mem.read_u32(pa)
    }

    /// Host write of a `u32` slice starting at `va`.
    pub fn write_slice_u32(&mut self, va: VAddr, data: &[u32]) {
        for (i, &v) in data.iter().enumerate() {
            self.write_u32(va.offset(i as u64 * 4), v);
        }
    }

    /// Host write of a `u64` slice starting at `va`.
    pub fn write_slice_u64(&mut self, va: VAddr, data: &[u64]) {
        for (i, &v) in data.iter().enumerate() {
            self.write_u64(va.offset(i as u64 * 8), v);
        }
    }

    /// Host read of `n` `u32`s starting at `va`.
    pub fn read_slice_u32(&mut self, va: VAddr, n: usize) -> Vec<u32> {
        (0..n).map(|i| self.read_u32(va.offset(i as u64 * 4))).collect()
    }

    /// Host read of `n` `u64`s starting at `va`.
    pub fn read_slice_u64(&mut self, va: VAddr, n: usize) -> Vec<u64> {
        (0..n).map(|i| self.read_u64(va.offset(i as u64 * 8))).collect()
    }

    // --- device and thread management ------------------------------------

    /// Maps MAPLE instance `i` into the process and programs its MMU;
    /// returns the user virtual address of its page (the handle every API
    /// operation uses).
    pub fn map_maple(&mut self, i: usize) -> VAddr {
        assert!(i < self.engines.len(), "no MAPLE instance {i}");
        let page = PAddr(self.cfg.maple_page(i));
        let va = self
            .aspace
            .map_device(&mut self.mem, &mut self.frames, page);
        self.engines[i].set_page_table(self.aspace.page_table());
        if let Some(chaos) = &mut self.chaos {
            chaos.maple_vas[i] = Some(va);
        }
        va
    }

    /// Loads `program` onto the next free core; returns the core index.
    ///
    /// # Panics
    ///
    /// Panics when all configured cores are in use.
    pub fn load_program(&mut self, program: Program, args: &[(Reg, u64)]) -> usize {
        let idx = self.cores.len();
        assert!(
            idx < self.cfg.cores,
            "configuration has only {} cores",
            self.cfg.cores
        );
        let mut core = Core::new(idx, self.cfg.cpu, program, self.aspace.page_table());
        core.set_tracer(self.tracer.clone());
        for &(r, v) in args {
            core.set_reg(r, v);
        }
        self.cores.push(core);
        self.desc_pair.push(None);
        self.faults_in_service.push(false);
        idx
    }

    /// Connects two loaded cores with DeSC coupled queues (the DeSC
    /// baseline's core modification).
    pub fn pair_desc(&mut self, access: usize, execute: usize, queues: usize) {
        let k = self.desc_queues.len();
        self.desc_queues
            .push(DescQueues::new(queues, self.cfg.desc_queue_capacity));
        self.desc_pair[access] = Some(k);
        self.desc_pair[execute] = Some(k);
    }

    /// Programs the DROPLET prefetcher with an indirect pattern given in
    /// *virtual* addresses (translated here, as the driver would).
    ///
    /// # Panics
    ///
    /// Panics if DROPLET is not enabled in the configuration or the
    /// arrays are not physically contiguous (eager allocations are).
    pub fn droplet_watch(&mut self, b: VAddr, b_len: u64, b_elem: u8, a: VAddr, a_elem: u8) {
        if b_len == 0 {
            // Empty index array: nothing to watch (and no last byte to
            // check contiguity on).
            return;
        }
        let b_start = self.host_paddr(b);
        // Eager allocations are physically contiguous (bump allocator);
        // verify on the last page to catch misuse.
        let last = self.host_paddr(VAddr(b.0 + b_len.saturating_sub(1)));
        assert_eq!(
            last.0 - b_start.0,
            b_len - 1,
            "DROPLET watch requires physically contiguous index array"
        );
        let a_start = self.host_paddr(a);
        let d = self
            .droplet
            .as_mut()
            .expect("droplet not enabled in SocConfig");
        d.add_watch(IndirectWatch {
            b_start,
            b_end: PAddr(b_start.0 + b_len),
            b_elem,
            a_base: a_start,
            a_elem,
        });
    }

    // --- simulation -------------------------------------------------------

    fn route(&self, addr: PAddr) -> Coord {
        if addr.0 >= MAPLE_PA_BASE {
            let idx = ((addr.0 - MAPLE_PA_BASE) / PAGE_SIZE) as usize;
            self.layout.maple_tiles[idx.min(self.layout.maple_tiles.len() - 1)]
        } else {
            self.layout.l2_tile
        }
    }

    fn tile_index(&self, c: Coord) -> usize {
        usize::from(c.y) * usize::from(self.cfg.mesh_width) + usize::from(c.x)
    }

    fn queue_out(&mut self, from: Coord, msg: OutMsg) {
        let t = self.tile_index(from);
        self.out_uncore[t].send(self.now, self.cfg.uncore_latency, msg);
    }

    /// Queues an outbound memory/MMIO request from `tile`, routing by
    /// physical address and stamping the reply coordinate. When
    /// `watch_core` names the issuing core and the chaos plane is active,
    /// MAPLE-bound transactions go under MMIO watchdog observation (the
    /// plane may drop the request or its response; the engine's dedup
    /// cache makes re-sending the identical request safe).
    fn send_req(&mut self, tile: Coord, mut req: MemReq, watch_core: Option<usize>) {
        req.reply_to = tile;
        let dst = self.route(req.addr);
        let flits = req.flits();
        if let Some(core) = watch_core {
            if req.addr.0 >= MAPLE_PA_BASE {
                if let Some(chaos) = &mut self.chaos {
                    chaos.mmio_watch.insert(
                        (core, req.id),
                        MmioWatch {
                            req,
                            issued: self.now,
                            retries: 0,
                        },
                    );
                }
            }
        }
        self.queue_out(
            tile,
            OutMsg {
                dst,
                flits,
                payload: NocPayload::Req(req),
            },
        );
    }

    /// Queues an outbound response (engine ack/data or L2 fill) from `tile`.
    fn send_resp(&mut self, tile: Coord, out: maple_mem::l2::OutboundResp) {
        self.queue_out(
            tile,
            OutMsg {
                dst: out.dst,
                flits: out.flits,
                payload: NocPayload::Resp(out.resp),
            },
        );
    }

    fn is_maple_tile(&self, c: Coord) -> bool {
        self.layout.maple_tiles.contains(&c)
    }

    /// Retires a poisoned MAPLE instance: the driver unmaps its page
    /// (with the matching shootdowns) so no further operations reach it.
    fn retire_engine(&mut self, e: usize) {
        let Some(chaos) = &mut self.chaos else {
            return;
        };
        if chaos.retired[e] {
            return;
        }
        chaos.retired[e] = true;
        chaos.stats.engines_poisoned.inc();
        let va = chaos.maple_vas[e].take();
        if let Some(va) = va {
            self.aspace.unmap(&mut self.mem, va);
            for core in &mut self.cores {
                core.tlb_shootdown(va.page());
            }
            for engine in &mut self.engines {
                engine.tlb_shootdown(va.page());
            }
        }
    }

    /// Injects due scheduled faults and scans the core-MMIO watchdog.
    /// No-op (no RNG draws, no scans) when the plane is off.
    fn chaos_stage(&mut self, now: Cycle) {
        if self.chaos.is_none() {
            return;
        }

        // Scheduled mid-run engine RESETs (the driver re-initialising an
        // instance under live traffic).
        loop {
            let chaos = self.chaos.as_mut().expect("checked above");
            match chaos.resets.front() {
                Some(&(at, e)) if at <= now.0 => {
                    chaos.resets.pop_front();
                    if e < self.engines.len() && !chaos.retired[e] {
                        chaos.stats.resets_injected.inc();
                        self.tracer.emit(now, || TraceEvent::FaultRecovered {
                            site: FaultSite::EngineReset,
                        });
                        self.engines[e].reset();
                    }
                }
                _ => break,
            }
        }

        // Randomly-timed TLB shootdowns on heap pages (an OS unmap/remap
        // racing the engines).
        loop {
            let chaos = self.chaos.as_mut().expect("checked above");
            match chaos.shootdowns.front() {
                Some(&(at, raw)) if at <= now.0 => {
                    chaos.shootdowns.pop_front();
                    let (lo, hi) = self.aspace.heap_span();
                    let pages = (hi - lo) / PAGE_SIZE;
                    if pages == 0 {
                        continue;
                    }
                    let vpn: VirtPage = VAddr(lo + (raw % pages) * PAGE_SIZE).page();
                    self.chaos
                        .as_mut()
                        .expect("checked above")
                        .stats
                        .shootdowns_injected
                        .inc();
                    self.tracer.emit(now, || TraceEvent::FaultRecovered {
                        site: FaultSite::TlbShootdown,
                    });
                    for core in &mut self.cores {
                        core.tlb_shootdown(vpn);
                    }
                    for engine in &mut self.engines {
                        engine.tlb_shootdown(vpn);
                    }
                }
                _ => break,
            }
        }

        // Engines whose own watchdog gave up: the driver retires them.
        for e in 0..self.engines.len() {
            if self.engines[e].is_poisoned() {
                self.retire_engine(e);
            }
        }

        // Core-MMIO watchdog: re-inject overdue transactions; after the
        // retry budget, declare the target engine unreachable and retire
        // it. Sorted keys keep seed replay deterministic despite HashMap
        // iteration order.
        let chaos = self.chaos.as_mut().expect("checked above");
        if chaos.mmio_watch.is_empty() {
            return;
        }
        let w = chaos.watchdog;
        let mut overdue: Vec<(usize, u64)> = chaos
            .mmio_watch
            .iter()
            .filter(|(_, m)| now >= w.deadline(m.issued, m.retries))
            .map(|(&k, _)| k)
            .collect();
        overdue.sort_unstable();
        for key in overdue {
            let chaos = self.chaos.as_mut().expect("checked above");
            let Some(m) = chaos.mmio_watch.get_mut(&key) else {
                continue;
            };
            chaos.stats.mmio_timeouts.inc();
            if m.retries >= w.max_retries {
                let req = m.req;
                chaos.mmio_watch.remove(&key);
                let e = ((req.addr.0.saturating_sub(MAPLE_PA_BASE)) / PAGE_SIZE) as usize;
                if e < self.engines.len() {
                    self.retire_engine(e);
                }
            } else {
                m.retries += 1;
                m.issued = now;
                let req = m.req;
                chaos.stats.mmio_retries.inc();
                self.tracer.emit(now, || TraceEvent::FaultRecovered {
                    site: FaultSite::MmioRetry,
                });
                // The stall this transaction resolves is now recovery
                // work; attribute it as such when it ends. The watch entry
                // was updated in place, so the retry is not re-watched.
                self.cores[key.0].note_fault_retry();
                let tile = self.layout.core_tiles[key.0];
                self.send_req(tile, req, None);
            }
        }
    }

    fn step(&mut self) {
        let now = self.now;

        // 1. Deliver mesh arrivals to components.
        for i in 0..self.cores.len() {
            let tile = self.layout.core_tiles[i];
            for payload in self.mesh.take_delivered(tile) {
                match payload {
                    NocPayload::Resp(resp) => {
                        if let Some(chaos) = &mut self.chaos {
                            chaos.mmio_watch.remove(&(i, resp.id));
                        }
                        self.cores[i].on_mem_resp(now, resp, &self.mem);
                    }
                    NocPayload::Req(req) => {
                        unreachable!("request delivered to core tile: {req:?}")
                    }
                }
            }
        }
        for payload in self.mesh.take_delivered(self.layout.l2_tile) {
            match payload {
                NocPayload::Req(req) => {
                    if let Some(d) = &mut self.droplet {
                        d.observe(now, &req);
                    }
                    self.l2.accept(now, req);
                }
                NocPayload::Resp(_) => unreachable!("response delivered to L2 tile"),
            }
        }
        for e in 0..self.engines.len() {
            let tile = self.layout.maple_tiles[e];
            for payload in self.mesh.take_delivered(tile) {
                match payload {
                    NocPayload::Req(req) => self.engines[e].accept(now, req),
                    NocPayload::Resp(resp) => {
                        self.engines[e].on_mem_resp(now, resp, &self.mem);
                    }
                }
            }
        }

        // 2. Complete due fault services. A fault outside any lazy region
        //    cannot be serviced: under chaos it is counted and the
        //    component stays stalled (the watchdog/hang machinery reports
        //    it); without chaos it is still the hard invariant it was.
        while let Some(target) = self.fault_service.recv(now) {
            match target {
                FaultTarget::Core(i) => {
                    let Some(fault) = self.cores[i].fault() else {
                        self.faults_in_service[i] = false;
                        continue;
                    };
                    let ok = self.aspace.handle_fault(
                        &mut self.mem,
                        &mut self.frames,
                        fault.vaddr,
                    );
                    if ok {
                        self.cores[i].resume_from_fault(now, 1);
                        self.faults_in_service[i] = false;
                    } else if let Some(chaos) = &mut self.chaos {
                        // Keep `faults_in_service` set: the core stays
                        // Faulted and the hang diagnosis reports it.
                        chaos.stats.unserviceable_faults.inc();
                    } else {
                        panic!("core {i} faulted outside any lazy region: {fault:?}");
                    }
                }
                FaultTarget::Engine(e) => {
                    let Some(fault) = self.engines[e].fault() else {
                        self.engine_fault_in_service[e] = false;
                        continue;
                    };
                    let ok = self.aspace.handle_fault(
                        &mut self.mem,
                        &mut self.frames,
                        fault.vaddr,
                    );
                    if ok {
                        self.engines[e].resolve_fault();
                        self.engine_fault_in_service[e] = false;
                    } else if let Some(chaos) = &mut self.chaos {
                        chaos.stats.unserviceable_faults.inc();
                    } else {
                        panic!("MAPLE {e} faulted outside any lazy region: {fault:?}");
                    }
                }
            }
        }

        // 2b. Inject scheduled chaos events and scan the MMIO watchdog.
        self.chaos_stage(now);

        // 3. Tick cores (with DeSC queues when paired), engines, L2,
        //    DROPLET.
        for i in 0..self.cores.len() {
            let dq = match self.desc_pair[i] {
                Some(k) => Some(&mut self.desc_queues[k]),
                None => None,
            };
            self.cores[i].tick(now, &mut self.mem, dq);
            if self.cores[i].state() == CoreState::Faulted && !self.faults_in_service[i] {
                self.faults_in_service[i] = true;
                self.fault_service
                    .send(now, self.cfg.fault_latency, FaultTarget::Core(i));
            }
        }
        for e in 0..self.engines.len() {
            self.engines[e].tick(now, &mut self.mem);
            if self.engines[e].fault().is_some() && !self.engine_fault_in_service[e] {
                self.engine_fault_in_service[e] = true;
                self.fault_service
                    .send(now, self.cfg.fault_latency, FaultTarget::Engine(e));
            }
        }
        self.l2.tick(now, &mut self.mem);
        if let Some(d) = &mut self.droplet {
            for req in d.tick(now, &self.mem) {
                self.l2.accept(now, req);
            }
        }

        // 4. Collect outbound messages into the uncore path (one shared
        //    egress helper per message kind; see `send_req`/`send_resp`).
        for i in 0..self.cores.len() {
            let tile = self.layout.core_tiles[i];
            while let Some(req) = self.cores[i].pop_mem_request() {
                self.send_req(tile, req, Some(i));
            }
        }
        for e in 0..self.engines.len() {
            let tile = self.layout.maple_tiles[e];
            while let Some(req) = self.engines[e].pop_mem_request() {
                self.send_req(tile, req, None);
            }
            while let Some(out) = self.engines[e].pop_response(now) {
                self.send_resp(tile, out);
            }
        }
        let l2_tile = self.layout.l2_tile;
        while let Some(out) = self.l2.pop_outgoing() {
            self.send_resp(l2_tile, out);
        }

        // 5. Inject due messages, preserving per-tile order under
        //    backpressure.
        for t in 0..self.out_uncore.len() {
            let src = Coord::new(
                (t % usize::from(self.cfg.mesh_width)) as u8,
                (t / usize::from(self.cfg.mesh_width)) as u8,
            );
            loop {
                let msg = if let Some(m) = self.out_retry[t].pop_front() {
                    m
                } else if let Some(m) = self.out_uncore[t].recv(now) {
                    m
                } else {
                    break;
                };
                // Fault-eligible traffic must be individually retryable
                // without changing architectural order:
                // - anything an engine sources (its fetches, responses,
                //   acks): fetch slots are pre-reserved and responses are
                //   replayable, so loss is recoverable;
                // - the memory path back into an engine (L2 → MAPLE
                //   fills): the engine watchdog re-issues by txid;
                // - core → engine *blocking* MMIO loads (consume/open):
                //   each core has at most one outstanding, so a retry
                //   cannot reorder.
                // Core → engine posted stores (produce) are excluded:
                // arrival order defines queue order, so dropping or
                // delaying one would silently reorder the stream. The
                // host memory path (core ↔ L2) is likewise excluded: a
                // write-through store has no ack to retry on.
                let unreliable = self.chaos.is_some()
                    && (self.is_maple_tile(src)
                        || (self.is_maple_tile(msg.dst)
                            && match &msg.payload {
                                NocPayload::Resp(_) => true,
                                NocPayload::Req(req) => {
                                    matches!(req.kind, maple_mem::msg::MemReqKind::ReadWord { .. })
                                }
                            }));
                let injected = if unreliable {
                    self.mesh
                        .inject_unreliable(now, src, msg.dst, msg.flits, msg.payload)
                } else {
                    self.mesh.inject(now, src, msg.dst, msg.flits, msg.payload)
                };
                match injected {
                    Ok(()) => {}
                    Err(back) => {
                        self.out_retry[t].push_front(OutMsg {
                            dst: msg.dst,
                            flits: msg.flits,
                            payload: back.0,
                        });
                        break;
                    }
                }
            }
        }

        // 6. Advance the interconnect.
        self.mesh.tick(now);

        // 7. Occupancy sampling (Section 4.4: the queue-size study reads
        // runahead through MAPLE's debug counters).
        if now.0.is_multiple_of(OCCUPANCY_SAMPLE_PERIOD) {
            for (e, hists) in self.occupancy.iter_mut().enumerate() {
                for (q, h) in hists.iter_mut().enumerate() {
                    h.record(self.engines[e].queue(q as u8).occupancy() as u64);
                }
            }
        }
        self.now += 1;
    }

    /// Terminal outcome after a step, if any: all cores halted, or an
    /// engine was retired (poisoned) under the fault plane.
    fn step_outcome(&self) -> Option<RunOutcome> {
        if self.cores.iter().all(Core::is_halted) {
            return Some(RunOutcome::Finished(self.now));
        }
        if let Some(chaos) = &self.chaos {
            if chaos.retired.iter().any(|&r| r) {
                return Some(RunOutcome::Hung(Box::new(self.hang_diagnosis())));
            }
        }
        None
    }

    /// Earliest cycle at or after `now` at which *any* component could act:
    /// the event horizon. `None` means no component will ever act again
    /// without external input — the system is wedged and only the cycle
    /// budget remains.
    ///
    /// Every source of spontaneous activity contributes a term; anything
    /// omitted here would let [`System::run`] skip over an observable
    /// mutation and diverge from [`System::dense_run`]:
    ///
    /// - cores (ready-to-issue, L1 response/outbound traffic),
    /// - engines (pipeline heads, decode/respond queues, fetch watchdog),
    /// - the shared L2 and DRAM (staged requests, completions),
    /// - DROPLET decode deadlines,
    /// - the mesh (pinned to `now` while any packet is in flight),
    /// - per-tile uncore egress queues and backpressured retries,
    /// - pending page-fault service completions,
    /// - the chaos plane (scheduled resets/shootdowns, MMIO watchdog
    ///   deadlines, and a poisoned-but-not-yet-retired engine, which the
    ///   next `chaos_stage` must observe),
    /// - the next queue-occupancy sample (a scheduled event, so sampled
    ///   cycles are identical to the dense reference).
    fn horizon(&self) -> Option<Cycle> {
        let now = self.now;
        let mut h = maple_sim::Horizon::IDLE;
        for core in &self.cores {
            h.observe(core.next_event(now));
        }
        // A core ready to issue this cycle pins the horizon at `now` —
        // the common case while compute proceeds. Bail before paying for
        // the engine queue scans below; `run` skips nothing either way.
        if h.earliest() == Some(now) {
            return Some(now);
        }
        for engine in &self.engines {
            h.observe(engine.next_event(now));
        }
        if h.earliest() == Some(now) {
            return Some(now);
        }
        h.observe(self.l2.next_event(now));
        if let Some(d) = &self.droplet {
            h.observe(d.next_event(now));
        }
        h.observe(self.mesh.next_event(now));
        for q in &self.out_uncore {
            h.observe(q.next_deadline().map(|d| d.max(now)));
        }
        if self.out_retry.iter().any(|r| !r.is_empty()) {
            h.at(now);
        }
        h.observe(self.fault_service.next_deadline().map(|d| d.max(now)));
        if let Some(chaos) = &self.chaos {
            h.observe(chaos.next_event(now));
            if self
                .engines
                .iter()
                .enumerate()
                .any(|(e, eng)| eng.is_poisoned() && !chaos.retired[e])
            {
                h.at(now);
            }
        }
        if !self.occupancy.is_empty() {
            h.at(Cycle(now.0.next_multiple_of(OCCUPANCY_SAMPLE_PERIOD)));
        }
        h.earliest()
    }

    /// Fast-forwards to `target`, applying the per-cycle accounting the
    /// dense loop would have performed on each skipped cycle: core stall
    /// counters, engine produce/consume stall counters, and the mesh's
    /// round-robin arbitration rotation. Everything else is provably
    /// idle over the gap (that is what [`System::horizon`] established).
    fn skip_to(&mut self, target: Cycle) {
        let n = target.since(self.now);
        if n == 0 {
            return;
        }
        for core in &mut self.cores {
            core.skip(n);
        }
        for engine in &mut self.engines {
            engine.skip(n);
        }
        self.mesh.skip(n);
        self.now = target;
    }

    /// Runs until every loaded core halts or `max_cycles` elapse, skipping
    /// quiescent gaps: after each stepped cycle the run loop computes the
    /// event horizon (`min` of every component's `next_event`) and
    /// advances time straight to it. Produces bit-identical cycle counts,
    /// statistics, traces and occupancy samples to [`System::dense_run`] —
    /// the skipped cycles are exactly those on which the dense loop would
    /// only have performed the bulk-applied accounting of `skip_to`.
    ///
    /// On expiry the outcome is [`RunOutcome::Hung`] carrying a
    /// structured [`HangDiagnosis`] (per-core stall reason, per-engine
    /// outstanding work) rather than a bare timeout. Under an active
    /// fault plane, a run whose engine was retired (poisoned) returns
    /// early with the same diagnosis instead of burning the full budget.
    ///
    /// When the configuration selects
    /// [`SocConfig::with_dense_stepper`](crate::config::SocConfig::with_dense_stepper),
    /// dispatches to [`System::dense_run`] instead.
    ///
    /// # Panics
    ///
    /// Panics if no program was loaded.
    pub fn run(&mut self, max_cycles: u64) -> RunOutcome {
        if self.cfg.dense_stepper {
            return self.dense_run(max_cycles);
        }
        assert!(!self.cores.is_empty(), "load programs before running");
        while self.now.0 < max_cycles {
            self.step();
            if let Some(outcome) = self.step_outcome() {
                return outcome;
            }
            // A non-quiescent mesh pins the horizon at `now` (packets move
            // every cycle), so the full component scan below could only
            // confirm there is nothing to skip — don't pay for it.
            if !self.mesh.is_quiescent() {
                continue;
            }
            let target = self.horizon().map_or(max_cycles, |h| h.0).min(max_cycles);
            if target > self.now.0 {
                self.skip_to(Cycle(target));
            }
        }
        RunOutcome::Hung(Box::new(self.hang_diagnosis()))
    }

    /// The dense reference stepper: advances one cycle at a time with no
    /// quiescence skipping. Semantically identical to [`System::run`] —
    /// kept as the differential oracle for the event-horizon scheduler and
    /// as the baseline for host-throughput comparisons.
    ///
    /// # Panics
    ///
    /// Panics if no program was loaded.
    pub fn dense_run(&mut self, max_cycles: u64) -> RunOutcome {
        assert!(!self.cores.is_empty(), "load programs before running");
        while self.now.0 < max_cycles {
            self.step();
            if let Some(outcome) = self.step_outcome() {
                return outcome;
            }
        }
        RunOutcome::Hung(Box::new(self.hang_diagnosis()))
    }

    /// Snapshot of why the system is not making progress.
    #[must_use]
    pub fn hang_diagnosis(&self) -> HangDiagnosis {
        HangDiagnosis {
            at: self.now,
            cores: self
                .cores
                .iter()
                .enumerate()
                .map(|(i, c)| CoreHang {
                    core: i,
                    state: c.state_label(),
                    mmio_unacked: c.mmio_unacked(),
                })
                .collect(),
            engines: self
                .engines
                .iter()
                .enumerate()
                .map(|(e, eng)| EngineHang {
                    engine: e,
                    queue_occupancy: eng.queue_occupancies(),
                    outstanding_fetches: eng.inflight_fetches(),
                    pending_produces: eng.pending_produces(),
                    pending_consumes: eng.pending_consumes(),
                    poisoned: eng.is_poisoned()
                        || self.chaos.as_ref().is_some_and(|c| c.retired[e]),
                })
                .collect(),
        }
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    // --- inspection -------------------------------------------------------

    /// A loaded core.
    #[must_use]
    pub fn core(&self, i: usize) -> &Core {
        &self.cores[i]
    }

    /// Number of loaded cores.
    #[must_use]
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// A MAPLE engine.
    #[must_use]
    pub fn engine(&self, i: usize) -> &Engine {
        &self.engines[i]
    }

    /// The shared L2.
    #[must_use]
    pub fn l2(&self) -> &SharedL2 {
        &self.l2
    }

    /// The DROPLET prefetcher, when enabled.
    #[must_use]
    pub fn droplet(&self) -> Option<&DropletPrefetcher> {
        self.droplet.as_ref()
    }

    /// Mesh statistics.
    #[must_use]
    pub fn mesh_stats(&self) -> &maple_noc::MeshStats {
        self.mesh.stats()
    }

    /// Driver-side chaos counters, when the fault plane is active.
    #[must_use]
    pub fn chaos_stats(&self) -> Option<&ChaosStats> {
        self.chaos.as_ref().map(|c| &c.stats)
    }

    /// DRAM statistics (includes fault-plane latency spikes).
    #[must_use]
    pub fn dram_stats(&self) -> &maple_mem::dram::DramStats {
        self.l2.dram_stats()
    }

    /// Whether engine `e` was retired by the driver after poisoning.
    #[must_use]
    pub fn engine_retired(&self, e: usize) -> bool {
        self.chaos.as_ref().is_some_and(|c| c.retired[e])
    }

    /// Sampled occupancy distribution of engine `e`'s queue `q` (one
    /// sample every [`OCCUPANCY_SAMPLE_PERIOD`] cycles) — the Section 4.4
    /// runahead observable.
    #[must_use]
    pub fn queue_occupancy(&self, e: usize, q: u8) -> &maple_sim::stats::Histogram {
        &self.occupancy[e][usize::from(q)]
    }

    /// Total load instructions retired across cores (Figure 10's metric).
    #[must_use]
    pub fn total_loads(&self) -> u64 {
        self.cores.iter().map(|c| c.stats().loads.get()).sum()
    }

    /// Mean load-to-use latency across cores (Figure 11's metric),
    /// weighted by load count.
    #[must_use]
    pub fn mean_load_latency(&self) -> f64 {
        let mut h = maple_sim::stats::Histogram::new();
        for c in &self.cores {
            h.merge(&c.l1_stats().load_latency);
        }
        h.mean()
    }

    // --- observability ----------------------------------------------------

    /// The observability tracer handle (disabled unless
    /// [`SocConfig::with_tracing`] was used).
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Snapshot of the captured trace, oldest first. Empty when tracing
    /// is disabled; when the ring overflowed only the most recent events
    /// survive (see [`Tracer::dropped`]).
    #[must_use]
    pub fn trace_records(&self) -> Vec<TraceRecord> {
        self.tracer.records()
    }

    /// Exports the captured trace in Chrome `trace_event` JSON to `path`
    /// (open in `chrome://tracing` or <https://ui.perfetto.dev>).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        maple_trace::chrome::write_chrome_trace(path, &self.tracer.records())
    }

    /// Cycles core `i` has been live: issue to halt, or to now if still
    /// running.
    fn core_cycles(&self, i: usize) -> u64 {
        self.cores[i]
            .stats()
            .halted_at
            .map_or(self.now.0, |h| h.0)
    }

    /// Per-core stall attribution rows (blocking cycles split by
    /// attributed cause; `compute` is the remainder).
    #[must_use]
    pub fn stall_rows(&self) -> Vec<StallRow> {
        (0..self.cores.len())
            .map(|i| StallRow {
                label: format!("core{i}"),
                core_cycles: self.core_cycles(i),
                breakdown: self.cores[i].stats().stall,
            })
            .collect()
    }

    /// Aggregate stall attribution across every loaded core.
    #[must_use]
    pub fn stall_total(&self) -> (u64, StallBreakdown) {
        let mut total = StallBreakdown::default();
        let mut cycles = 0;
        for i in 0..self.cores.len() {
            total.merge(&self.cores[i].stats().stall);
            cycles += self.core_cycles(i);
        }
        (cycles, total)
    }

    /// One unified registry snapshot of every component's counters: the
    /// scattered per-component stats structs (`CpuStats`, `L1Stats`,
    /// `EngineStats`, `L2Stats`, `DramStats`, `MeshStats`, `ChaosStats`)
    /// rendered into named, typed metrics. Render with
    /// [`MetricsSnapshot::render_table`] or
    /// [`MetricsSnapshot::to_json`].
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut m = MetricsSnapshot::new();
        m.counter("sim/cycles", self.now.0);
        for (i, c) in self.cores.iter().enumerate() {
            let st = c.stats();
            let p = format!("core{i}");
            m.counter(format!("{p}/instructions"), st.instructions.get());
            m.counter(format!("{p}/loads"), st.loads.get());
            m.counter(format!("{p}/stores"), st.stores.get());
            m.counter(format!("{p}/atomics"), st.atomics.get());
            m.counter(format!("{p}/mem_stall_cycles"), st.mem_stall_cycles.get());
            m.counter(format!("{p}/ptw_stall_cycles"), st.ptw_stall_cycles.get());
            for (label, cycles) in st.stall.buckets() {
                m.counter(format!("{p}/stall/{label}"), cycles);
            }
            let l1 = c.l1_stats();
            m.counter(format!("{p}/l1/loads"), l1.loads.get());
            m.counter(format!("{p}/l1/load_hits"), l1.load_hits.get());
            m.histogram(format!("{p}/l1/load_latency"), &l1.load_latency);
        }
        for (e, eng) in self.engines.iter().enumerate() {
            let st = eng.stats();
            let p = format!("engine{e}");
            m.counter(format!("{p}/mem_fetches"), st.mem_fetches.get());
            m.counter(format!("{p}/llc_prefetches"), st.llc_prefetches.get());
            m.counter(format!("{p}/lima_completed"), st.lima_completed.get());
            m.counter(format!("{p}/produce_stalls"), st.produce_stalls.get());
            m.counter(format!("{p}/consume_stalls"), st.consume_stalls.get());
            m.counter(format!("{p}/faults"), st.faults.get());
            m.counter(format!("{p}/fetch_retries"), st.fetch_retries.get());
            m.counter(format!("{p}/acks_dropped"), st.acks_dropped.get());
            for (q, hist) in self.occupancy[e].iter().enumerate() {
                m.histogram(format!("{p}/queue{q}/occupancy"), hist);
            }
        }
        let l2 = self.l2.stats();
        m.counter("l2/hits", l2.hits.get());
        m.counter("l2/misses", l2.misses.get());
        m.counter("l2/dram_fetches", l2.dram_fetches.get());
        m.counter("l2/prefetch_fills", l2.prefetch_fills.get());
        m.counter("l2/writes", l2.writes.get());
        let dram = self.dram_stats();
        m.counter("dram/requests", dram.requests.get());
        m.counter("dram/spikes", dram.spikes.get());
        m.histogram("dram/latency", &dram.latency);
        let noc = self.mesh_stats();
        m.counter("noc/injected", noc.injected.get());
        m.counter("noc/delivered", noc.delivered.get());
        m.counter("noc/hops", noc.hops.get());
        m.counter("noc/dropped", noc.dropped.get());
        m.counter("noc/delayed", noc.delayed.get());
        m.histogram("noc/latency", &noc.latency);
        if let Some(chaos) = self.chaos_stats() {
            m.counter("chaos/resets_injected", chaos.resets_injected.get());
            m.counter("chaos/shootdowns_injected", chaos.shootdowns_injected.get());
            m.counter("chaos/mmio_timeouts", chaos.mmio_timeouts.get());
            m.counter("chaos/mmio_retries", chaos.mmio_retries.get());
            m.counter("chaos/engines_poisoned", chaos.engines_poisoned.get());
            m.counter(
                "chaos/unserviceable_faults",
                chaos.unserviceable_faults.get(),
            );
        }
        if self.tracer.is_enabled() {
            m.counter("trace/captured", self.tracer.records().len() as u64);
            m.counter("trace/dropped", self.tracer.dropped());
        }
        m
    }
}
