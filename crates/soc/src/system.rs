//! The assembled SoC: cores, MAPLE engines, shared L2 and DRAM on a 2-D
//! mesh, with OS services and the experiment-facing control surface.
//!
//! A [`System`] is built from a [`SocConfig`], loaded with per-core
//! programs, and run to completion. Everything the paper's evaluation
//! needs hangs off this type: heap allocation (eager or demand-paged),
//! MAPLE instance mapping, DeSC core pairing, DROPLET configuration, and
//! statistics extraction.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use maple_baselines::droplet::{DropletPrefetcher, IndirectWatch};
use maple_core::Engine;
use maple_cpu::desc::DescQueues;
use maple_cpu::Core;
use maple_isa::{Program, Reg};
use maple_fleet::Crew;
use maple_mem::l2::SharedL2;
use maple_mem::msg::{MemReq, MemResp};
use maple_mem::phys::{PAddr, PhysMem, WriteStage, PAGE_SIZE};
use maple_noc::{Coord, Fabric, MeshConfig, NocFault, XbarFault};
use maple_sim::fault::{CoreHang, EngineHang, HangDiagnosis, WatchdogConfig};
use maple_sim::link::DelayQueue;
use maple_sim::stats::Counter;
use maple_sim::{Cycle, RunOutcome};
use maple_trace::{
    merge_rings, FaultSite, MetricsSnapshot, StallBreakdown, StallRow, TraceEvent, TraceRecord,
    Tracer,
};
use maple_vm::page_table::FrameAllocator;
use maple_vm::{VAddr, VirtPage};

use crate::config::{SocConfig, TileLayout, MAPLE_PA_BASE};
use crate::os::AddressSpace;
use crate::partition::{phase2, Command, EngineMsg, Inbox, Partition, PartitionOut, SplitPlan};

/// Messages carried by the NoC.
///
/// Flit counts are *not* duplicated here: the NoC serialization cost lives
/// solely in the (private) `OutMsg::flits` field and inside the mesh
/// packet, so a response's size has a single source of truth.
#[derive(Debug, Clone, Copy)]
pub enum NocPayload {
    /// A memory/MMIO request heading to the L2 tile or a MAPLE tile.
    Req(MemReq),
    /// A response heading back to a requester tile.
    Resp(MemResp),
}

#[derive(Debug)]
struct OutMsg {
    dst: Coord,
    flits: u8,
    payload: NocPayload,
}

/// A pending OS page-fault service. The faulting address is carried in
/// the dispatch record (rather than re-read from the component at
/// service time) because the component lives inside a partition the hub
/// cannot reach mid-cycle.
#[derive(Debug, Clone, Copy)]
enum FaultTarget {
    Core(usize, VAddr),
    Engine(usize, VAddr),
}

/// Terminal state of a run loop, mapped to a [`RunOutcome`] only after
/// the partitions are reassembled (a hang diagnosis needs the components
/// back in place).
#[derive(Debug, Clone, Copy)]
enum Verdict {
    Finished(Cycle),
    Retired,
    Budget,
}

/// One core-issued MMIO transaction under watchdog observation.
#[derive(Debug, Clone, Copy)]
struct MmioWatch {
    req: MemReq,
    issued: Cycle,
    retries: u32,
}

/// Counters for everything the chaos plane injected and the recovery
/// machinery did about it (the driver/uncore side; per-site counters live
/// in the mesh, DRAM and engine stats).
#[derive(Debug, Clone, Default)]
pub struct ChaosStats {
    /// Scheduled mid-run engine `RESET`s delivered.
    pub resets_injected: Counter,
    /// Randomly-timed engine TLB shootdowns delivered.
    pub shootdowns_injected: Counter,
    /// Core-issued MMIO transactions that overran their watchdog.
    pub mmio_timeouts: Counter,
    /// MMIO transactions re-injected after a timeout.
    pub mmio_retries: Counter,
    /// Engines the driver retired (unmapped) after poisoning.
    pub engines_poisoned: Counter,
    /// Page faults that could not be serviced (outside any lazy region);
    /// the faulting component stays stalled instead of panicking the
    /// simulator.
    pub unserviceable_faults: Counter,
}

/// Driver/uncore-level chaos state: scheduled events still to inject,
/// outstanding MMIO transactions under watchdog, and poison bookkeeping.
#[derive(Debug)]
struct ChaosState {
    /// Pending mid-run engine resets, sorted by cycle.
    resets: VecDeque<(u64, usize)>,
    /// Pending TLB shootdowns: `(cycle, raw random word)`, sorted.
    shootdowns: VecDeque<(u64, u64)>,
    /// Core-side MMIO watchdog policy.
    watchdog: WatchdogConfig,
    /// Outstanding MMIO transactions keyed by `(core, L1 txid)`.
    mmio_watch: HashMap<(usize, u64), MmioWatch>,
    /// Engines retired by the driver after poisoning.
    retired: Vec<bool>,
    /// User VA of each mapped engine page (recorded at `map_maple`),
    /// needed to unmap a poisoned instance.
    maple_vas: Vec<Option<VAddr>>,
    stats: ChaosStats,
}

impl ChaosState {
    /// Earliest cycle at or after `now` at which the chaos plane must run:
    /// the next scheduled reset or shootdown, or the earliest MMIO
    /// watchdog deadline. Schedules are sorted, so only heads matter; the
    /// watchdog deadline is a pure function of the watch entry, so a skip
    /// landing exactly on it reproduces the dense scan's decision.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut h = maple_sim::Horizon::IDLE;
        if let Some(&(at, _)) = self.resets.front() {
            h.at(Cycle(at.max(now.0)));
        }
        if let Some(&(at, _)) = self.shootdowns.front() {
            h.at(Cycle(at.max(now.0)));
        }
        for m in self.mmio_watch.values() {
            h.at(self.watchdog.deadline(m.issued, m.retries).max(now));
        }
        h.earliest()
    }
}

/// The assembled system.
pub struct System {
    cfg: SocConfig,
    layout: TileLayout,
    mem: PhysMem,
    frames: FrameAllocator,
    aspace: AddressSpace,
    /// The interconnect: the historical flat mesh, or the two-level
    /// clustered fabric when the configuration asks for >1 cluster.
    mesh: Fabric<NocPayload>,
    cores: Vec<Core>,
    engines: Vec<Engine>,
    /// Address-interleaved L2 banks (`line % banks`); flat configurations
    /// hold exactly one, and every aggregate over one bank is the
    /// historical value unchanged.
    l2: Vec<SharedL2>,
    droplet: Option<DropletPrefetcher>,
    desc_queues: Vec<DescQueues>,
    desc_pair: Vec<Option<usize>>,
    /// Per-tile outbound path: uncore delay then injection (with retry on
    /// backpressure, order-preserving).
    out_uncore: Vec<DelayQueue<OutMsg>>,
    out_retry: Vec<VecDeque<OutMsg>>,
    fault_service: DelayQueue<FaultTarget>,
    faults_in_service: Vec<bool>,
    engine_fault_in_service: Vec<bool>,
    /// Per-engine, per-queue occupancy samples (taken every
    /// [`OCCUPANCY_SAMPLE_PERIOD`] cycles).
    occupancy: Vec<Vec<maple_sim::stats::Histogram>>,
    /// Live user VA of each mapped MAPLE page (hub copy, tracked whether
    /// or not the chaos plane is active) — the remap/unmap primitives of
    /// the serving driver's engine virtualization key off this.
    maple_user_vas: Vec<Option<VAddr>>,
    /// Fault-injection plane state; `None` keeps the run fault-free with
    /// zero timing perturbation.
    chaos: Option<ChaosState>,
    /// Hub mirror of each engine's poisoned flag, refreshed from the
    /// partition reports at the end of every cycle. The chaos scan reads
    /// the mirror (state as of the *previous* cycle's ticks) — exactly
    /// the one-cycle lag the sequential stepper had, since poisoning
    /// happens at tick time, after the scan.
    poisoned_mirror: Vec<bool>,
    /// Hub-owned trace ring (mesh, L2/DRAM and chaos events); disabled
    /// unless [`SocConfig::with_tracing`] was used.
    tracer: Tracer,
    /// Per-core trace rings (each core emits into its own ring so
    /// partition workers never contend; merged canonically on read).
    core_rings: Vec<Tracer>,
    /// Per-engine trace rings.
    engine_rings: Vec<Tracer>,
    now: Cycle,
}

/// Cycles between queue-occupancy samples.
pub const OCCUPANCY_SAMPLE_PERIOD: u64 = 64;

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("cores", &self.cores.len())
            .field("engines", &self.engines.len())
            .field("now", &self.now)
            .finish()
    }
}

impl System {
    /// Builds an idle system from a configuration.
    #[must_use]
    pub fn new(cfg: SocConfig) -> Self {
        let layout = cfg.layout();
        let mut mem = PhysMem::new();
        // Frames live above the first 16 MB (reserved) within 1 GB DRAM.
        let mut frames = FrameAllocator::new(PAddr(0x100_0000), (1 << 30) - 0x100_0000);
        let aspace = AddressSpace::new(&mut mem, &mut frames);
        // A 1×1 (or absent) cluster grid takes the flat arm and runs the
        // untouched mesh code — the degenerate hierarchy is byte-identical
        // to the historical topology by construction, not by re-derivation.
        let mut mesh = match cfg.fabric_topology() {
            Some(topo) => {
                let cluster = cfg.cluster.expect("topology implies a cluster config");
                Fabric::clustered(topo, cluster.xbar_latency)
            }
            None => Fabric::flat(MeshConfig::new(cfg.mesh_width, cfg.mesh_height)),
        };
        let mut maple_cfg = cfg.maple;
        maple_cfg.decode_latency += cfg.maple_extra_latency / 2;
        maple_cfg.respond_latency += cfg.maple_extra_latency - cfg.maple_extra_latency / 2;
        let mut engines: Vec<Engine> = (0..cfg.maples).map(|_| Engine::new(maple_cfg)).collect();
        let mut l2: Vec<SharedL2> = (0..cfg.n_l2_banks())
            .map(|_| SharedL2::new(cfg.l2, cfg.dram))
            .collect();
        let tracer = cfg.trace.map_or_else(Tracer::disabled, Tracer::enabled);
        let engine_rings: Vec<Tracer> = (0..cfg.maples)
            .map(|_| cfg.trace.map_or_else(Tracer::disabled, Tracer::enabled))
            .collect();
        if tracer.is_enabled() {
            mesh.set_tracer(tracer.clone());
            for bank in &mut l2 {
                bank.set_tracer(tracer.clone());
            }
            for (e, engine) in engines.iter_mut().enumerate() {
                engine.set_tracer(e, engine_rings[e].clone());
            }
        }
        let droplet = cfg.droplet.map(DropletPrefetcher::new);
        let nodes = usize::from(cfg.mesh_width) * usize::from(cfg.mesh_height);
        // Install the fault plane's per-site schedules and the driver-side
        // chaos state. All of this is skipped — and no RNG stream is ever
        // created or drawn — when `cfg.fault` is `None`.
        let chaos = cfg.fault.as_ref().map(|f| {
            mesh.set_fault(NocFault::from_plane(f));
            if mesh.is_clustered() {
                mesh.set_xbar_fault(XbarFault::from_plane(f));
            }
            // Bank 0 draws the historical DRAM stream; further banks get
            // independent streams, so single-bank chaos replay is
            // bit-for-bit the pre-hierarchy one.
            for (b, bank) in l2.iter_mut().enumerate() {
                bank.set_dram_fault(f.dram_bank_schedule(b));
            }
            for (e, engine) in engines.iter_mut().enumerate() {
                engine.set_watchdog(f.engine_watchdog);
                engine.set_ack_fault(f.ack_loss_schedule(e as u64));
            }
            let mut resets: Vec<(u64, usize)> = f.engine_resets.clone();
            resets.sort_unstable();
            ChaosState {
                resets: resets.into(),
                shootdowns: f.shootdown_events().into(),
                watchdog: f.mmio_watchdog,
                mmio_watch: HashMap::new(),
                retired: vec![false; cfg.maples],
                maple_vas: vec![None; cfg.maples],
                stats: ChaosStats::default(),
            }
        });
        System {
            layout,
            mem,
            frames,
            aspace,
            mesh,
            cores: Vec::new(),
            engines,
            l2,
            droplet,
            desc_queues: Vec::new(),
            desc_pair: Vec::new(),
            out_uncore: (0..nodes).map(|_| DelayQueue::new()).collect(),
            out_retry: (0..nodes).map(|_| VecDeque::new()).collect(),
            fault_service: DelayQueue::new(),
            faults_in_service: Vec::new(),
            engine_fault_in_service: vec![false; cfg.maples],
            occupancy: (0..cfg.maples)
                .map(|_| vec![maple_sim::stats::Histogram::new(); maple_cfg.queues])
                .collect(),
            maple_user_vas: vec![None; cfg.maples],
            chaos,
            poisoned_mirror: vec![false; cfg.maples],
            tracer,
            core_rings: Vec::new(),
            engine_rings,
            now: Cycle::ZERO,
            cfg,
        }
    }

    /// The configuration this system was built from.
    #[must_use]
    pub fn config(&self) -> &SocConfig {
        &self.cfg
    }

    // --- host-side memory services ---------------------------------------

    /// Allocates zeroed, eagerly-mapped heap memory.
    pub fn alloc(&mut self, bytes: u64) -> VAddr {
        self.aspace.alloc(&mut self.mem, &mut self.frames, bytes)
    }

    /// Allocates demand-paged heap memory (first touches fault).
    pub fn alloc_lazy(&mut self, bytes: u64) -> VAddr {
        self.aspace.alloc_lazy(bytes)
    }

    fn host_paddr(&mut self, va: VAddr) -> PAddr {
        if let Some(pa) = self.aspace.translate(&self.mem, va) {
            return pa;
        }
        // Host-side touch of a lazy page maps it (like the kernel writing
        // into a fresh mmap).
        assert!(
            self.aspace.handle_fault(&mut self.mem, &mut self.frames, va),
            "host access to unmapped address {va}"
        );
        self.aspace.translate(&self.mem, va).expect("just mapped")
    }

    /// Host write of a 64-bit word.
    pub fn write_u64(&mut self, va: VAddr, value: u64) {
        let pa = self.host_paddr(va);
        self.mem.write_u64(pa, value);
    }

    /// Host write of a 32-bit word.
    pub fn write_u32(&mut self, va: VAddr, value: u32) {
        let pa = self.host_paddr(va);
        self.mem.write_u32(pa, value);
    }

    /// Host read of a 64-bit word.
    pub fn read_u64(&mut self, va: VAddr) -> u64 {
        let pa = self.host_paddr(va);
        self.mem.read_u64(pa)
    }

    /// Host read of a 32-bit word.
    pub fn read_u32(&mut self, va: VAddr) -> u32 {
        let pa = self.host_paddr(va);
        self.mem.read_u32(pa)
    }

    /// Host write of a `u32` slice starting at `va`.
    pub fn write_slice_u32(&mut self, va: VAddr, data: &[u32]) {
        for (i, &v) in data.iter().enumerate() {
            self.write_u32(va.offset(i as u64 * 4), v);
        }
    }

    /// Host write of a `u64` slice starting at `va`.
    pub fn write_slice_u64(&mut self, va: VAddr, data: &[u64]) {
        for (i, &v) in data.iter().enumerate() {
            self.write_u64(va.offset(i as u64 * 8), v);
        }
    }

    /// Host read of `n` `u32`s starting at `va`.
    pub fn read_slice_u32(&mut self, va: VAddr, n: usize) -> Vec<u32> {
        (0..n).map(|i| self.read_u32(va.offset(i as u64 * 4))).collect()
    }

    /// Host read of `n` `u64`s starting at `va`.
    pub fn read_slice_u64(&mut self, va: VAddr, n: usize) -> Vec<u64> {
        (0..n).map(|i| self.read_u64(va.offset(i as u64 * 8))).collect()
    }

    // --- device and thread management ------------------------------------

    /// Maps MAPLE instance `i` into the process and programs its MMU;
    /// returns the user virtual address of its page (the handle every API
    /// operation uses).
    pub fn map_maple(&mut self, i: usize) -> VAddr {
        assert!(i < self.engines.len(), "no MAPLE instance {i}");
        let page = PAddr(self.cfg.maple_page(i));
        let va = self
            .aspace
            .map_device(&mut self.mem, &mut self.frames, page);
        self.engines[i].set_page_table(self.aspace.page_table());
        self.maple_user_vas[i] = Some(va);
        if let Some(chaos) = &mut self.chaos {
            chaos.maple_vas[i] = Some(va);
        }
        va
    }

    // --- engine virtualization (multi-tenant serving driver) --------------

    /// The live user VA of MAPLE instance `i`'s MMIO page, if mapped.
    #[must_use]
    pub fn maple_va(&self, i: usize) -> Option<VAddr> {
        self.maple_user_vas[i]
    }

    /// Moves MAPLE instance `i`'s MMIO page to a fresh user VA: the old
    /// mapping is destroyed, a new one is bump-allocated, and the
    /// matching shootdown is broadcast to every core and engine TLB so no
    /// stale translation can serve a post-remap request. This is the
    /// context-switch remap of the serving driver — the page the next
    /// tenant's program addresses is never the one the previous tenant
    /// held. Returns the new VA.
    ///
    /// Must be called between runs (the driver's context-switch point),
    /// not from inside a stepping loop.
    ///
    /// # Panics
    ///
    /// Panics if instance `i` was never mapped.
    pub fn remap_maple(&mut self, i: usize) -> VAddr {
        let old = self.maple_user_vas[i].expect("remap of an unmapped MAPLE instance");
        assert!(self.aspace.unmap(&mut self.mem, old), "stale maple VA record");
        for c in &mut self.cores {
            c.tlb_shootdown(old.page());
        }
        for e in &mut self.engines {
            e.tlb_shootdown(old.page());
        }
        let page = PAddr(self.cfg.maple_page(i));
        let va = self
            .aspace
            .map_device(&mut self.mem, &mut self.frames, page);
        self.maple_user_vas[i] = Some(va);
        if let Some(chaos) = &mut self.chaos {
            chaos.maple_vas[i] = Some(va);
        }
        va
    }

    /// Administratively unmaps MAPLE instance `i` (the driver retiring an
    /// instance, e.g. after a mid-tenant engine failure), with the same
    /// shootdown broadcast as [`System::remap_maple`]. Returns whether a
    /// mapping existed. Subsequent requests must be served by a software
    /// path — the fallback ladder's concern, not this primitive's.
    pub fn unmap_maple(&mut self, i: usize) -> bool {
        let Some(old) = self.maple_user_vas[i].take() else {
            return false;
        };
        self.aspace.unmap(&mut self.mem, old);
        for c in &mut self.cores {
            c.tlb_shootdown(old.page());
        }
        for e in &mut self.engines {
            e.tlb_shootdown(old.page());
        }
        if let Some(chaos) = &mut self.chaos {
            chaos.maple_vas[i] = None;
        }
        true
    }

    /// Saves engine `i`'s tenant-visible architectural state (queues,
    /// TLB, in-flight fetches, pending operations) for a later
    /// [`System::restore_engine_context`]. The engine is not modified.
    #[must_use]
    pub fn save_engine_context(&self, i: usize) -> maple_core::EngineContext {
        self.engines[i].save_context()
    }

    /// Restores a context saved by [`System::save_engine_context`] onto
    /// engine `i`, completing a tenant context switch. Physical-engine
    /// state (statistics, transaction-ID allocator, replay cache) is
    /// deliberately not part of the context — see
    /// [`maple_core::EngineContext`].
    pub fn restore_engine_context(&mut self, i: usize, ctx: maple_core::EngineContext) {
        self.engines[i].restore_context(ctx);
    }

    /// Resets engine `i` to pristine tenant-visible state — the context
    /// switch onto a tenant that has no saved context yet.
    pub fn reset_engine(&mut self, i: usize) {
        self.engines[i].reset();
    }

    /// Flushes every engine's MMIO replay cache. A driver step at serving
    /// batch boundaries: reloaded cores restart their L1 transaction ids,
    /// so a stale completed entry keyed by `(tile, id)` would wrongly
    /// replay a previous request's response. Only valid at quiescence (no
    /// outstanding MMIO transactions) — which batch completion guarantees.
    pub fn flush_engine_replay_caches(&mut self) {
        for e in &mut self.engines {
            e.flush_replay_cache();
        }
    }

    /// Replaces the program on an already-loaded core, re-arming it for
    /// another run: fresh architectural state, same trace ring, current
    /// page table. The serving scheduler uses this to dispatch a new
    /// request onto a core whose previous request has halted.
    ///
    /// # Panics
    ///
    /// Panics if core `idx` was never loaded or is DeSC-paired (paired
    /// cores share queue state a reload would orphan).
    pub fn reload_core(&mut self, idx: usize, program: Program, args: &[(Reg, u64)]) {
        assert!(idx < self.cores.len(), "core {idx} was never loaded");
        assert!(
            self.desc_pair[idx].is_none(),
            "cannot reload a DeSC-paired core"
        );
        let mut core = Core::new(idx, self.cfg.cpu, program, self.aspace.page_table());
        core.set_tracer(self.core_rings[idx].clone());
        for &(r, v) in args {
            core.set_reg(r, v);
        }
        self.cores[idx] = core;
        self.faults_in_service[idx] = false;
    }

    /// Loads `program` onto the next free core; returns the core index.
    ///
    /// # Panics
    ///
    /// Panics when all configured cores are in use.
    pub fn load_program(&mut self, program: Program, args: &[(Reg, u64)]) -> usize {
        let idx = self.cores.len();
        assert!(
            idx < self.cfg.cores,
            "configuration has only {} cores",
            self.cfg.cores
        );
        let mut core = Core::new(idx, self.cfg.cpu, program, self.aspace.page_table());
        let ring = self.cfg.trace.map_or_else(Tracer::disabled, Tracer::enabled);
        core.set_tracer(ring.clone());
        self.core_rings.push(ring);
        for &(r, v) in args {
            core.set_reg(r, v);
        }
        self.cores.push(core);
        self.desc_pair.push(None);
        self.faults_in_service.push(false);
        idx
    }

    /// Connects two loaded cores with DeSC coupled queues (the DeSC
    /// baseline's core modification).
    pub fn pair_desc(&mut self, access: usize, execute: usize, queues: usize) {
        let k = self.desc_queues.len();
        self.desc_queues
            .push(DescQueues::new(queues, self.cfg.desc_queue_capacity));
        self.desc_pair[access] = Some(k);
        self.desc_pair[execute] = Some(k);
    }

    /// Programs the DROPLET prefetcher with an indirect pattern given in
    /// *virtual* addresses (translated here, as the driver would).
    ///
    /// # Panics
    ///
    /// Panics if DROPLET is not enabled in the configuration or the
    /// arrays are not physically contiguous (eager allocations are).
    pub fn droplet_watch(&mut self, b: VAddr, b_len: u64, b_elem: u8, a: VAddr, a_elem: u8) {
        if b_len == 0 {
            // Empty index array: nothing to watch (and no last byte to
            // check contiguity on).
            return;
        }
        let b_start = self.host_paddr(b);
        // Eager allocations are physically contiguous (bump allocator);
        // verify on the last page to catch misuse.
        let last = self.host_paddr(VAddr(b.0 + b_len.saturating_sub(1)));
        assert_eq!(
            last.0 - b_start.0,
            b_len - 1,
            "DROPLET watch requires physically contiguous index array"
        );
        let a_start = self.host_paddr(a);
        let d = self
            .droplet
            .as_mut()
            .expect("droplet not enabled in SocConfig");
        d.add_watch(IndirectWatch {
            b_start,
            b_end: PAddr(b_start.0 + b_len),
            b_elem,
            a_base: a_start,
            a_elem,
        });
    }

    // --- simulation -------------------------------------------------------

    /// Which L2 bank serves `addr`: line-address interleaving across the
    /// banks. The single-bank expression is kept literal (`0`, no modulo)
    /// so flat configurations compute exactly what they always did.
    fn bank_of(&self, addr: PAddr) -> usize {
        let n = self.l2.len();
        if n == 1 {
            0
        } else {
            ((addr.0 / maple_mem::LINE_SIZE) % n as u64) as usize
        }
    }

    fn route(&self, addr: PAddr) -> Coord {
        if addr.0 >= MAPLE_PA_BASE {
            let idx = ((addr.0 - MAPLE_PA_BASE) / PAGE_SIZE) as usize;
            self.layout.maple_tiles[idx.min(self.layout.maple_tiles.len() - 1)]
        } else {
            self.layout.l2_tiles[self.bank_of(addr)]
        }
    }

    fn tile_index(&self, c: Coord) -> usize {
        usize::from(c.y) * usize::from(self.cfg.mesh_width) + usize::from(c.x)
    }

    fn queue_out(&mut self, from: Coord, msg: OutMsg) {
        let t = self.tile_index(from);
        self.out_uncore[t].send(self.now, self.cfg.uncore_latency, msg);
    }

    /// Queues an outbound memory/MMIO request from `tile`, routing by
    /// physical address and stamping the reply coordinate. When
    /// `watch_core` names the issuing core and the chaos plane is active,
    /// MAPLE-bound transactions go under MMIO watchdog observation (the
    /// plane may drop the request or its response; the engine's dedup
    /// cache makes re-sending the identical request safe).
    fn send_req(&mut self, tile: Coord, mut req: MemReq, watch_core: Option<usize>) {
        req.reply_to = tile;
        let dst = self.route(req.addr);
        let flits = req.flits();
        if let Some(core) = watch_core {
            if req.addr.0 >= MAPLE_PA_BASE {
                if let Some(chaos) = &mut self.chaos {
                    chaos.mmio_watch.insert(
                        (core, req.id),
                        MmioWatch {
                            req,
                            issued: self.now,
                            retries: 0,
                        },
                    );
                }
            }
        }
        self.queue_out(
            tile,
            OutMsg {
                dst,
                flits,
                payload: NocPayload::Req(req),
            },
        );
    }

    /// Queues an outbound response (engine ack/data or L2 fill) from `tile`.
    fn send_resp(&mut self, tile: Coord, out: maple_mem::l2::OutboundResp) {
        self.queue_out(
            tile,
            OutMsg {
                dst: out.dst,
                flits: out.flits,
                payload: NocPayload::Resp(out.resp),
            },
        );
    }

    fn is_maple_tile(&self, c: Coord) -> bool {
        self.layout.maple_tiles.contains(&c)
    }

    /// Retires a poisoned MAPLE instance: the driver unmaps its page and
    /// broadcasts the matching shootdown to every partition so no further
    /// operations reach it.
    fn retire_engine(&mut self, e: usize, mem: &mut PhysMem, inboxes: &mut [Inbox]) {
        let Some(chaos) = &mut self.chaos else {
            return;
        };
        if chaos.retired[e] {
            return;
        }
        chaos.retired[e] = true;
        chaos.stats.engines_poisoned.inc();
        let va = chaos.maple_vas[e].take();
        if let Some(va) = va {
            self.aspace.unmap(mem, va);
            for inbox in inboxes.iter_mut() {
                inbox.commands.push(Command::Shootdown { vpn: va.page() });
            }
        }
    }

    /// Injects due scheduled faults and scans the core-MMIO watchdog,
    /// turning every injection into partition [`Command`]s. No-op (no RNG
    /// draws, no scans) when the plane is off.
    fn chaos_stage(
        &mut self,
        now: Cycle,
        mem: &mut PhysMem,
        plan: &SplitPlan,
        inboxes: &mut [Inbox],
    ) {
        if self.chaos.is_none() {
            return;
        }

        // Scheduled mid-run engine RESETs (the driver re-initialising an
        // instance under live traffic).
        loop {
            let chaos = self.chaos.as_mut().expect("checked above");
            match chaos.resets.front() {
                Some(&(at, e)) if at <= now.0 => {
                    chaos.resets.pop_front();
                    if e < plan.total_engines() && !chaos.retired[e] {
                        chaos.stats.resets_injected.inc();
                        self.tracer.emit(now, || TraceEvent::FaultRecovered {
                            site: FaultSite::EngineReset,
                        });
                        let (p, local) = plan.engine_owner(e);
                        inboxes[p].commands.push(Command::EngineReset { engine: local });
                    }
                }
                _ => break,
            }
        }

        // Randomly-timed TLB shootdowns on heap pages (an OS unmap/remap
        // racing the engines) — broadcast to every partition.
        loop {
            let chaos = self.chaos.as_mut().expect("checked above");
            match chaos.shootdowns.front() {
                Some(&(at, raw)) if at <= now.0 => {
                    chaos.shootdowns.pop_front();
                    let (lo, hi) = self.aspace.heap_span();
                    let pages = (hi - lo) / PAGE_SIZE;
                    if pages == 0 {
                        continue;
                    }
                    let vpn: VirtPage = VAddr(lo + (raw % pages) * PAGE_SIZE).page();
                    self.chaos
                        .as_mut()
                        .expect("checked above")
                        .stats
                        .shootdowns_injected
                        .inc();
                    self.tracer.emit(now, || TraceEvent::FaultRecovered {
                        site: FaultSite::TlbShootdown,
                    });
                    for inbox in inboxes.iter_mut() {
                        inbox.commands.push(Command::Shootdown { vpn });
                    }
                }
                _ => break,
            }
        }

        // Engines whose own watchdog gave up: the driver retires them.
        // The scan reads the hub's poisoned mirror (last cycle's tick
        // state), which is when the sequential stepper observed it too.
        for e in 0..plan.total_engines() {
            if self.poisoned_mirror[e] {
                self.retire_engine(e, mem, inboxes);
            }
        }

        // Core-MMIO watchdog: re-inject overdue transactions; after the
        // retry budget, declare the target engine unreachable and retire
        // it. Sorted keys keep seed replay deterministic despite HashMap
        // iteration order.
        let chaos = self.chaos.as_mut().expect("checked above");
        if chaos.mmio_watch.is_empty() {
            return;
        }
        let w = chaos.watchdog;
        let mut overdue: Vec<(usize, u64)> = chaos
            .mmio_watch
            .iter()
            .filter(|(_, m)| now >= w.deadline(m.issued, m.retries))
            .map(|(&k, _)| k)
            .collect();
        overdue.sort_unstable();
        for key in overdue {
            let chaos = self.chaos.as_mut().expect("checked above");
            let Some(m) = chaos.mmio_watch.get_mut(&key) else {
                continue;
            };
            chaos.stats.mmio_timeouts.inc();
            if m.retries >= w.max_retries {
                let req = m.req;
                chaos.mmio_watch.remove(&key);
                let e = ((req.addr.0.saturating_sub(MAPLE_PA_BASE)) / PAGE_SIZE) as usize;
                if e < plan.total_engines() {
                    self.retire_engine(e, mem, inboxes);
                }
            } else {
                m.retries += 1;
                m.issued = now;
                let req = m.req;
                chaos.stats.mmio_retries.inc();
                self.tracer.emit(now, || TraceEvent::FaultRecovered {
                    site: FaultSite::MmioRetry,
                });
                // The stall this transaction resolves is now recovery
                // work; attribute it as such when it ends. The watch entry
                // was updated in place, so the retry is not re-watched.
                let (p, local) = plan.core_owner(key.0);
                inboxes[p].commands.push(Command::NoteFaultRetry { core: local });
                let tile = self.layout.core_tiles[key.0];
                self.send_req(tile, req, None);
            }
        }
    }

    /// Phase 1 of one simulated cycle (hub-pre): collect mesh deliveries
    /// into per-partition inboxes (cut-link flits carry cycle stamps),
    /// complete due page-fault services, and turn chaos injections into
    /// partition commands. Component-bound effects become [`Command`]s so
    /// the owning partition applies them — in hub order — at the start of
    /// its phase 2.
    fn phase1(
        &mut self,
        now: Cycle,
        mem: &mut PhysMem,
        plan: &SplitPlan,
        inboxes: &mut [Inbox],
    ) {
        // 1a. Deliver mesh arrivals: core/engine traffic crosses the cut
        //     into the owning partition's inbox; L2 traffic stays hub-side.
        for i in 0..plan.total_cores() {
            let tile = self.layout.core_tiles[i];
            for payload in self.mesh.take_delivered(tile) {
                match payload {
                    NocPayload::Resp(resp) => {
                        if let Some(chaos) = &mut self.chaos {
                            chaos.mmio_watch.remove(&(i, resp.id));
                        }
                        let (p, local) = plan.core_owner(i);
                        inboxes[p].core_resps.export(now, (local, resp));
                    }
                    NocPayload::Req(req) => {
                        unreachable!("request delivered to core tile: {req:?}")
                    }
                }
            }
        }
        for b in 0..self.l2.len() {
            for payload in self.mesh.take_delivered(self.layout.l2_tiles[b]) {
                match payload {
                    NocPayload::Req(req) => {
                        if let Some(d) = &mut self.droplet {
                            d.observe(now, &req);
                        }
                        self.l2[b].accept(now, req);
                    }
                    NocPayload::Resp(_) => unreachable!("response delivered to L2 tile"),
                }
            }
        }
        for e in 0..plan.total_engines() {
            let tile = self.layout.maple_tiles[e];
            for payload in self.mesh.take_delivered(tile) {
                let (p, local) = plan.engine_owner(e);
                let msg = match payload {
                    NocPayload::Req(req) => EngineMsg::Req(req),
                    NocPayload::Resp(resp) => EngineMsg::Resp(resp),
                };
                inboxes[p].engine_msgs.export(now, (local, msg));
            }
        }

        // 1b. Complete due fault services. The OS maps the page recorded
        //     at dispatch time; the owning partition resumes (or keeps
        //     stalling) the component when it applies the command. A
        //     fault outside any lazy region cannot be serviced: under
        //     chaos it is counted and the component stays stalled;
        //     without chaos it is still the hard invariant it was.
        while let Some(target) = self.fault_service.recv(now) {
            let (component, index, vaddr) = match target {
                FaultTarget::Core(i, vaddr) => ("core", i, vaddr),
                FaultTarget::Engine(e, vaddr) => ("MAPLE", e, vaddr),
            };
            let ok = self.aspace.handle_fault(mem, &mut self.frames, vaddr);
            if !ok {
                if let Some(chaos) = &mut self.chaos {
                    chaos.stats.unserviceable_faults.inc();
                } else {
                    panic!("{component} {index} faulted outside any lazy region at {vaddr}");
                }
            }
            match target {
                FaultTarget::Core(i, _) => {
                    let (p, local) = plan.core_owner(i);
                    inboxes[p]
                        .commands
                        .push(Command::CoreFaultServiced { core: local, ok });
                }
                FaultTarget::Engine(e, _) => {
                    let (p, local) = plan.engine_owner(e);
                    inboxes[p]
                        .commands
                        .push(Command::EngineFaultServiced { engine: local, ok });
                }
            }
        }

        // 1c. Inject scheduled chaos events and scan the MMIO watchdog.
        self.chaos_stage(now, mem, plan, inboxes);

        // 1d. Publish the fast-path fence: the earliest cycle strictly
        //     after `now` at which this hub could inject a command into
        //     any partition — the next scheduled chaos event (reset,
        //     shootdown, watchdog deadline) or the next fault-service
        //     completion. Core compute runs split here so chaos replay
        //     stays bit-exact by construction, not by the (true but
        //     non-local) argument that today's commands cannot touch a
        //     Running core's registers. Computed identically by all
        //     three steppers since they share this phase function.
        let fence = if self.cfg.cpu.fast_path {
            let next = now.plus(1);
            let mut h = maple_sim::Horizon::IDLE;
            if let Some(chaos) = &self.chaos {
                h.observe(chaos.next_event(next));
            }
            h.observe(self.fault_service.next_deadline().map(|d| d.max(next)));
            h.earliest()
        } else {
            None
        };
        for inbox in inboxes.iter_mut() {
            inbox.fence = fence;
        }
    }

    /// Phase 3 of one simulated cycle (hub-post): apply every partition's
    /// staged stores and replay its egress in global component order,
    /// then tick the hub-owned L2/DROPLET/mesh and advance time. Returns
    /// the number of halted cores reported for this cycle.
    fn phase3(
        &mut self,
        now: Cycle,
        mem: &mut PhysMem,
        plan: &SplitPlan,
        outs: &mut [PartitionOut],
    ) -> usize {
        // 3a. Apply staged plain stores in global core order — the same
        //     write order the tick loop produced when stores were live,
        //     and before the L2 tick so volatile/AMO servicing sees them.
        for out in outs.iter_mut() {
            for stage in &mut out.stages {
                stage.apply(mem);
            }
        }

        // 3b. Replay egress in global component order (cores ascending,
        //     then engines ascending; per tile, engine requests precede
        //     engine responses — exactly the sequential pop order).
        for (p, out) in outs.iter_mut().enumerate() {
            let base = plan.core_starts[p];
            for (local, req) in out.core_reqs.drain(..) {
                let g = base + local;
                let tile = self.layout.core_tiles[g];
                self.send_req(tile, req, Some(g));
            }
        }
        for (p, out) in outs.iter_mut().enumerate() {
            let base = plan.engine_starts[p];
            for (local, req) in out.engine_reqs.drain(..) {
                let tile = self.layout.maple_tiles[base + local];
                self.send_req(tile, req, None);
            }
            for (local, resp) in out.engine_resps.drain(..) {
                let tile = self.layout.maple_tiles[base + local];
                self.send_resp(tile, resp);
            }
        }

        // 3c. Dispatch newly-raised faults to the OS, cores then engines
        //     in global order (the service queue is FIFO at equal
        //     deadlines, so dispatch order is completion order).
        for (p, out) in outs.iter_mut().enumerate() {
            let base = plan.core_starts[p];
            for (local, vaddr) in out.core_fault_dispatch.drain(..) {
                self.fault_service.send(
                    now,
                    self.cfg.fault_latency,
                    FaultTarget::Core(base + local, vaddr),
                );
            }
        }
        for (p, out) in outs.iter_mut().enumerate() {
            let base = plan.engine_starts[p];
            for (local, vaddr) in out.engine_fault_dispatch.drain(..) {
                self.fault_service.send(
                    now,
                    self.cfg.fault_latency,
                    FaultTarget::Engine(base + local, vaddr),
                );
            }
        }

        // 3d. Tick every L2 bank and DROPLET, and collect L2 egress in
        //     bank order (one bank replays the historical sequence).
        for bank in &mut self.l2 {
            bank.tick(now, mem);
        }
        let banks = self.l2.len() as u64;
        if let Some(d) = &mut self.droplet {
            for req in d.tick(now, mem) {
                let b = if banks == 1 {
                    0
                } else {
                    ((req.addr.0 / maple_mem::LINE_SIZE) % banks) as usize
                };
                self.l2[b].accept(now, req);
            }
        }
        for b in 0..self.l2.len() {
            let tile = self.layout.l2_tiles[b];
            while let Some(out) = self.l2[b].pop_outgoing() {
                self.send_resp(tile, out);
            }
        }

        // 3e. Inject due messages, preserving per-tile order under
        //     backpressure.
        self.inject_outbound(now);

        // 3f. Advance the interconnect, refresh the hub mirrors from the
        //     partition reports, and advance time.
        self.mesh.tick(now);
        let mut halted = 0;
        for (p, out) in outs.iter().enumerate() {
            halted += out.halted;
            let base = plan.engine_starts[p];
            for (local, &poisoned) in out.poisoned.iter().enumerate() {
                self.poisoned_mirror[base + local] = poisoned;
            }
        }
        self.now += 1;
        halted
    }

    /// Drains the per-tile uncore egress queues into the mesh, preserving
    /// per-tile order under backpressure.
    fn inject_outbound(&mut self, now: Cycle) {
        for t in 0..self.out_uncore.len() {
            let src = Coord::new(
                (t % usize::from(self.cfg.mesh_width)) as u16,
                (t / usize::from(self.cfg.mesh_width)) as u16,
            );
            loop {
                let msg = if let Some(m) = self.out_retry[t].pop_front() {
                    m
                } else if let Some(m) = self.out_uncore[t].recv(now) {
                    m
                } else {
                    break;
                };
                // Fault-eligible traffic must be individually retryable
                // without changing architectural order:
                // - anything an engine sources (its fetches, responses,
                //   acks): fetch slots are pre-reserved and responses are
                //   replayable, so loss is recoverable;
                // - the memory path back into an engine (L2 → MAPLE
                //   fills): the engine watchdog re-issues by txid;
                // - core → engine *blocking* MMIO loads (consume/open):
                //   each core has at most one outstanding, so a retry
                //   cannot reorder.
                // Core → engine posted stores (produce) are excluded:
                // arrival order defines queue order, so dropping or
                // delaying one would silently reorder the stream. The
                // host memory path (core ↔ L2) is likewise excluded: a
                // write-through store has no ack to retry on.
                let unreliable = self.chaos.is_some()
                    && (self.is_maple_tile(src)
                        || (self.is_maple_tile(msg.dst)
                            && match &msg.payload {
                                NocPayload::Resp(_) => true,
                                NocPayload::Req(req) => {
                                    matches!(req.kind, maple_mem::msg::MemReqKind::ReadWord { .. })
                                }
                            }));
                let injected = if unreliable {
                    self.mesh
                        .inject_unreliable(now, src, msg.dst, msg.flits, msg.payload)
                } else {
                    self.mesh.inject(now, src, msg.dst, msg.flits, msg.payload)
                };
                match injected {
                    Ok(()) => {}
                    Err(back) => {
                        self.out_retry[t].push_front(OutMsg {
                            dst: msg.dst,
                            flits: msg.flits,
                            payload: back.0,
                        });
                        break;
                    }
                }
            }
        }
    }

    /// Whether any engine was retired (poisoned) under the fault plane —
    /// the early-exit condition of every run loop.
    fn retired_any(&self) -> bool {
        self.chaos
            .as_ref()
            .is_some_and(|c| c.retired.iter().any(|&r| r))
    }

    /// Earliest cycle at or after `now` at which *any* component could act:
    /// the event horizon. `None` means no component will ever act again
    /// without external input — the system is wedged and only the cycle
    /// budget remains.
    ///
    /// Partition components (cores, engines) contributed their terms in
    /// phase 2 — each [`PartitionOut::horizon`] is the local minimum over
    /// ready-to-issue cores, engine pipeline heads, decode/respond queues
    /// and fetch watchdogs. The hub folds in everything it owns; anything
    /// omitted here would let a stepper skip over an observable mutation
    /// and diverge from the dense reference:
    ///
    /// - the shared L2 and DRAM (staged requests, completions),
    /// - DROPLET decode deadlines,
    /// - the mesh (pinned to `now` while any packet is in flight),
    /// - per-tile uncore egress queues and backpressured retries,
    /// - pending page-fault service completions,
    /// - the chaos plane (scheduled resets/shootdowns, MMIO watchdog
    ///   deadlines, and a poisoned-but-not-yet-retired engine, which the
    ///   next `chaos_stage` must observe — read from the hub mirror),
    /// - the next queue-occupancy sample (a scheduled event, so sampled
    ///   cycles are identical to the dense reference).
    fn hub_horizon(&self, outs: &[PartitionOut]) -> Option<Cycle> {
        let now = self.now;
        let mut h = maple_sim::Horizon::IDLE;
        for out in outs {
            h.observe(out.horizon);
        }
        // A core ready to issue this cycle pins the horizon at `now` —
        // the common case while compute proceeds. Bail before paying for
        // the hub scans below; the run loop skips nothing either way.
        if h.earliest() == Some(now) {
            return Some(now);
        }
        for bank in &self.l2 {
            h.observe(bank.next_event(now));
        }
        if let Some(d) = &self.droplet {
            h.observe(d.next_event(now));
        }
        h.observe(self.mesh.next_event(now));
        for q in &self.out_uncore {
            h.observe(q.next_deadline().map(|d| d.max(now)));
        }
        if self.out_retry.iter().any(|r| !r.is_empty()) {
            h.at(now);
        }
        h.observe(self.fault_service.next_deadline().map(|d| d.max(now)));
        if let Some(chaos) = &self.chaos {
            h.observe(chaos.next_event(now));
            if self
                .poisoned_mirror
                .iter()
                .enumerate()
                .any(|(e, &poisoned)| poisoned && !chaos.retired[e])
            {
                h.at(now);
            }
        }
        if self.cfg.maples > 0 {
            h.at(Cycle(now.0.next_multiple_of(OCCUPANCY_SAMPLE_PERIOD)));
        }
        h.earliest()
    }

    /// Splits the loaded components into `n` contiguous partitions,
    /// draining the per-component vectors out of `self`. The hub keeps
    /// everything else. [`System::reassemble`] is the exact inverse;
    /// every run loop brackets its cycle loop with this pair so that the
    /// inspection surface (statistics, traces, hang diagnosis) always
    /// sees the components back in their global order.
    fn split(&mut self, n: usize, report_horizon: bool) -> (SplitPlan, Vec<Partition>) {
        let plan = match self.cfg.fabric_topology() {
            Some(topo) => {
                // Partition boundaries snap to cluster boundaries so a
                // cluster's crossbar traffic and MAPLE pool never straddle
                // two workers (alignment is locality, not correctness —
                // the steppers are bit-exact at any split).
                let cuts = |tiles: &[Coord], count: usize| {
                    let mut cuts: Vec<usize> = (1..count)
                        .filter(|&i| {
                            topo.cluster_index_of(tiles[i])
                                != topo.cluster_index_of(tiles[i - 1])
                        })
                        .collect();
                    cuts.push(count);
                    cuts
                };
                let core_cuts = cuts(&self.layout.core_tiles, self.cores.len());
                let engine_cuts = cuts(&self.layout.maple_tiles, self.engines.len());
                SplitPlan::plan_clustered(
                    n,
                    self.cores.len(),
                    self.engines.len(),
                    &self.desc_pair,
                    &core_cuts,
                    &engine_cuts,
                )
            }
            None => SplitPlan::plan(n, self.cores.len(), self.engines.len(), &self.desc_pair),
        };
        let mut cores = std::mem::take(&mut self.cores).into_iter();
        let mut engines = std::mem::take(&mut self.engines).into_iter();
        let mut faults = std::mem::take(&mut self.faults_in_service).into_iter();
        let mut engine_faults = std::mem::take(&mut self.engine_fault_in_service).into_iter();
        let mut occupancy = std::mem::take(&mut self.occupancy).into_iter();
        let mut queues: Vec<Option<DescQueues>> = std::mem::take(&mut self.desc_queues)
            .into_iter()
            .map(Some)
            .collect();
        let mut parts = Vec::with_capacity(n);
        for p in 0..plan.partitions() {
            let nc = plan.core_starts[p + 1] - plan.core_starts[p];
            let ne = plan.engine_starts[p + 1] - plan.engine_starts[p];
            // Re-index the DeSC queues this partition's cores share. The
            // planner guarantees both ends of a pair land here, so the
            // global queue is moved (not cloned) into the partition.
            let mut desc_queues = Vec::new();
            let mut desc_global = Vec::new();
            let mut desc_pair = Vec::with_capacity(nc);
            for g in plan.core_starts[p]..plan.core_starts[p + 1] {
                desc_pair.push(self.desc_pair[g].map(|k| {
                    desc_global.iter().position(|&seen| seen == k).unwrap_or_else(|| {
                        desc_global.push(k);
                        desc_queues.push(queues[k].take().expect("planner never cuts a pair"));
                        desc_queues.len() - 1
                    })
                }));
            }
            parts.push(Partition {
                cores: cores.by_ref().take(nc).collect(),
                engines: engines.by_ref().take(ne).collect(),
                desc_queues,
                desc_global,
                desc_pair,
                faults_in_service: faults.by_ref().take(nc).collect(),
                engine_fault_in_service: engine_faults.by_ref().take(ne).collect(),
                occupancy: occupancy.by_ref().take(ne).collect(),
                report_horizon,
                inbox: Inbox::default(),
                out: PartitionOut {
                    stages: (0..nc).map(|_| WriteStage::new()).collect(),
                    ..PartitionOut::default()
                },
            });
        }
        (plan, parts)
    }

    /// Moves every component back into the hub vectors in global order
    /// (partition spans are contiguous, so partition order *is* global
    /// order) and restores the DeSC queues to their global indices.
    fn reassemble(&mut self, parts: Vec<Partition>) {
        let n_queues = self.desc_pair.iter().flatten().max().map_or(0, |&m| m + 1);
        let mut queues: Vec<Option<DescQueues>> = (0..n_queues).map(|_| None).collect();
        for part in parts {
            self.cores.extend(part.cores);
            self.engines.extend(part.engines);
            self.faults_in_service.extend(part.faults_in_service);
            self.engine_fault_in_service.extend(part.engine_fault_in_service);
            self.occupancy.extend(part.occupancy);
            for (q, k) in part.desc_queues.into_iter().zip(part.desc_global) {
                queues[k] = Some(q);
            }
        }
        self.desc_queues = queues
            .into_iter()
            .map(|q| q.expect("every queue returns from exactly one partition"))
            .collect();
    }

    /// Hub-side double buffers for the phase handoff: one [`Inbox`] and
    /// one [`PartitionOut`] per partition, swapped with the partition's
    /// own pair each cycle so neither side ever reallocates.
    fn fresh_io(parts: &[Partition]) -> (Vec<Inbox>, Vec<PartitionOut>) {
        let inboxes = parts.iter().map(|_| Inbox::default()).collect();
        let outs = parts
            .iter()
            .map(|p| PartitionOut {
                stages: (0..p.cores.len()).map(|_| WriteStage::new()).collect(),
                ..PartitionOut::default()
            })
            .collect();
        (inboxes, outs)
    }

    /// Maps a run loop's terminal [`Verdict`] to the public outcome,
    /// after reassembly (the hang diagnosis walks the component vectors).
    fn finish(&self, verdict: Verdict) -> RunOutcome {
        match verdict {
            Verdict::Finished(at) => RunOutcome::Finished(at),
            Verdict::Retired | Verdict::Budget => {
                RunOutcome::Hung(Box::new(self.hang_diagnosis()))
            }
        }
    }

    /// The single-threaded run loop: both the skipping stepper (the
    /// default) and the dense reference are this function, differing only
    /// in whether quiescent gaps are skipped. It runs the same three
    /// phases as [`System::partitioned_run`] over a one-partition split,
    /// so all steppers are bit-identical by shared code.
    fn sequential_run(&mut self, max_cycles: u64, skipping: bool) -> RunOutcome {
        assert!(!self.cores.is_empty(), "load programs before running");
        let total = self.cores.len();
        let mut mem = std::mem::take(&mut self.mem);
        let (plan, mut parts) = self.split(1, skipping);
        let (mut hub_in, mut hub_out) = Self::fresh_io(&parts);
        let verdict = loop {
            if self.now.0 >= max_cycles {
                break Verdict::Budget;
            }
            let now = self.now;
            self.phase1(now, &mut mem, &plan, &mut hub_in);
            for (p, part) in parts.iter_mut().enumerate() {
                std::mem::swap(&mut hub_in[p], &mut part.inbox);
                phase2(part, now, &mem);
                std::mem::swap(&mut hub_out[p], &mut part.out);
            }
            let halted = self.phase3(now, &mut mem, &plan, &mut hub_out);
            if halted == total {
                break Verdict::Finished(self.now);
            }
            if self.retired_any() {
                break Verdict::Retired;
            }
            // A non-quiescent mesh pins the horizon at `now` (packets move
            // every cycle), so the full component scan below could only
            // confirm there is nothing to skip — don't pay for it.
            if skipping && self.mesh.is_quiescent() {
                let target = self
                    .hub_horizon(&hub_out)
                    .map_or(max_cycles, |h| h.0)
                    .min(max_cycles);
                if target > self.now.0 {
                    let delta = target - self.now.0;
                    for part in &mut parts {
                        part.skip(delta);
                    }
                    self.mesh.skip(delta);
                    self.now = Cycle(target);
                }
            }
        };
        self.mem = mem;
        self.reassemble(parts);
        self.finish(verdict)
    }

    /// Runs until every loaded core halts or `max_cycles` elapse, skipping
    /// quiescent gaps: after each stepped cycle the run loop computes the
    /// event horizon (`min` of every component's `next_event`) and
    /// advances time straight to it. Produces bit-identical cycle counts,
    /// statistics, traces and occupancy samples to [`System::dense_run`] —
    /// the skipped cycles are exactly those on which the dense loop would
    /// only have performed the bulk-applied accounting of `Partition::skip`.
    ///
    /// On expiry the outcome is [`RunOutcome::Hung`] carrying a
    /// structured [`HangDiagnosis`] (per-core stall reason, per-engine
    /// outstanding work) rather than a bare timeout. Under an active
    /// fault plane, a run whose engine was retired (poisoned) returns
    /// early with the same diagnosis instead of burning the full budget.
    ///
    /// When the configuration selects
    /// [`SocConfig::with_partitions`](crate::config::SocConfig::with_partitions)
    /// with more than one partition, dispatches to
    /// [`System::partitioned_run`] with the worker count from
    /// `MAPLE_JOBS` (host parallelism by default); when it selects
    /// [`SocConfig::with_dense_stepper`](crate::config::SocConfig::with_dense_stepper),
    /// dispatches to [`System::dense_run`] instead.
    ///
    /// # Panics
    ///
    /// Panics if no program was loaded.
    pub fn run(&mut self, max_cycles: u64) -> RunOutcome {
        if self.cfg.partitions > 1 {
            let workers = self
                .cfg
                .partition_workers
                .unwrap_or_else(maple_fleet::jobs_from_env);
            return self.partitioned_run(max_cycles, workers);
        }
        if self.cfg.dense_stepper {
            return self.dense_run(max_cycles);
        }
        self.sequential_run(max_cycles, true)
    }

    /// The dense reference stepper: advances one cycle at a time with no
    /// quiescence skipping. Semantically identical to [`System::run`] —
    /// kept as the differential oracle for the event-horizon scheduler and
    /// as the baseline for host-throughput comparisons.
    ///
    /// # Panics
    ///
    /// Panics if no program was loaded.
    pub fn dense_run(&mut self, max_cycles: u64) -> RunOutcome {
        self.sequential_run(max_cycles, false)
    }

    /// The partitioned parallel stepper: splits the mesh into
    /// [`SocConfig::partitions`](crate::config::SocConfig::partitions)
    /// spatial partitions, each stepped by a [`Crew`] worker against a
    /// read-only view of physical memory, with a conservative barrier at
    /// partition boundaries every cycle. Flits crossing a cut carry cycle
    /// stamps and are exchanged at the barrier; the NoC's own link
    /// latency is the lookahead that makes the one-cycle barrier safe.
    ///
    /// Bit-exact with [`System::run`] and [`System::dense_run`] at any
    /// partition count and any worker count — identical cycle counts,
    /// metrics, trace streams and hang diagnoses — because all three
    /// steppers execute the same three phase functions; only the degree
    /// of overlap differs. `workers` caps the threads actually used
    /// (helpers beyond `partitions - 1` would have nothing to claim);
    /// `workers = 1` degenerates to the hub stepping every partition
    /// itself, the sequential reference.
    ///
    /// # Panics
    ///
    /// Panics if no program was loaded or `workers` is zero.
    pub fn partitioned_run(&mut self, max_cycles: u64, workers: usize) -> RunOutcome {
        assert!(!self.cores.is_empty(), "load programs before running");
        assert!(workers > 0, "at least one worker is required");
        let total = self.cores.len();
        let n = self.cfg.partitions.max(1);
        let (plan, parts) = self.split(n, true);
        let (mut hub_in, mut hub_out) = Self::fresh_io(&parts);
        let mem_lock = RwLock::new(std::mem::take(&mut self.mem));
        let now_cell = AtomicU64::new(self.now.0);
        let helpers = workers.saturating_sub(1).min(n.saturating_sub(1));
        let crew = Crew::new(parts);
        let work = |_: usize, part: &mut Partition| {
            let mem = mem_lock.read().expect("memory lock poisoned");
            phase2(part, Cycle(now_cell.load(Ordering::Acquire)), &mem);
        };
        let verdict = crew.run(helpers, &work, |conductor| {
            loop {
                if self.now.0 >= max_cycles {
                    break Verdict::Budget;
                }
                let now = self.now;
                now_cell.store(now.0, Ordering::Release);
                {
                    let mut mem = mem_lock.write().expect("memory lock poisoned");
                    self.phase1(now, &mut mem, &plan, &mut hub_in);
                }
                // Publish the inboxes, then open the barrier round. The
                // helpers only observe partition state through the slot
                // mutexes, so the swap is ordered before their claims.
                for (p, inbox) in hub_in.iter_mut().enumerate() {
                    std::mem::swap(inbox, &mut conductor.slot(p).inbox);
                }
                conductor.round();
                for (p, out) in hub_out.iter_mut().enumerate() {
                    std::mem::swap(out, &mut conductor.slot(p).out);
                }
                let halted = {
                    let mut mem = mem_lock.write().expect("memory lock poisoned");
                    self.phase3(now, &mut mem, &plan, &mut hub_out)
                };
                if halted == total {
                    break Verdict::Finished(self.now);
                }
                if self.retired_any() {
                    break Verdict::Retired;
                }
                if self.mesh.is_quiescent() {
                    let target = self
                        .hub_horizon(&hub_out)
                        .map_or(max_cycles, |h| h.0)
                        .min(max_cycles);
                    if target > self.now.0 {
                        let delta = target - self.now.0;
                        for p in 0..conductor.len() {
                            conductor.slot(p).skip(delta);
                        }
                        self.mesh.skip(delta);
                        self.now = Cycle(target);
                    }
                }
            }
        });
        self.mem = mem_lock.into_inner().expect("memory lock poisoned");
        self.reassemble(crew.into_slots());
        self.finish(verdict)
    }

    /// Snapshot of why the system is not making progress.
    #[must_use]
    pub fn hang_diagnosis(&self) -> HangDiagnosis {
        HangDiagnosis {
            at: self.now,
            cores: self
                .cores
                .iter()
                .enumerate()
                .map(|(i, c)| CoreHang {
                    core: i,
                    state: c.state_label(),
                    mmio_unacked: c.mmio_unacked(),
                })
                .collect(),
            engines: self
                .engines
                .iter()
                .enumerate()
                .map(|(e, eng)| EngineHang {
                    engine: e,
                    queue_occupancy: eng.queue_occupancies(),
                    outstanding_fetches: eng.inflight_fetches(),
                    pending_produces: eng.pending_produces(),
                    pending_consumes: eng.pending_consumes(),
                    poisoned: eng.is_poisoned()
                        || self.chaos.as_ref().is_some_and(|c| c.retired[e]),
                })
                .collect(),
        }
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    // --- inspection -------------------------------------------------------

    /// A loaded core.
    #[must_use]
    pub fn core(&self, i: usize) -> &Core {
        &self.cores[i]
    }

    /// Number of loaded cores.
    #[must_use]
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// A MAPLE engine.
    #[must_use]
    pub fn engine(&self, i: usize) -> &Engine {
        &self.engines[i]
    }

    /// The shared L2 (bank 0; flat configurations have exactly one).
    #[must_use]
    pub fn l2(&self) -> &SharedL2 {
        &self.l2[0]
    }

    /// L2 bank `b` of a banked (clustered) configuration.
    #[must_use]
    pub fn l2_bank(&self, b: usize) -> &SharedL2 {
        &self.l2[b]
    }

    /// Number of L2 banks (1 for flat configurations).
    #[must_use]
    pub fn l2_bank_count(&self) -> usize {
        self.l2.len()
    }

    /// The DROPLET prefetcher, when enabled.
    #[must_use]
    pub fn droplet(&self) -> Option<&DropletPrefetcher> {
        self.droplet.as_ref()
    }

    /// Mesh statistics.
    #[must_use]
    pub fn mesh_stats(&self) -> &maple_noc::MeshStats {
        self.mesh.stats()
    }

    /// Driver-side chaos counters, when the fault plane is active.
    #[must_use]
    pub fn chaos_stats(&self) -> Option<&ChaosStats> {
        self.chaos.as_ref().map(|c| &c.stats)
    }

    /// DRAM statistics aggregated across every bank's channel (includes
    /// fault-plane latency spikes). Over one bank this is the historical
    /// value unchanged.
    #[must_use]
    pub fn dram_stats(&self) -> maple_mem::dram::DramStats {
        let mut total = maple_mem::dram::DramStats::default();
        for bank in &self.l2 {
            let s = bank.dram_stats();
            total.requests.add(s.requests.get());
            total.spikes.add(s.spikes.get());
            total.latency.merge(&s.latency);
        }
        total
    }

    /// Whether engine `e` was retired by the driver after poisoning.
    #[must_use]
    pub fn engine_retired(&self, e: usize) -> bool {
        self.chaos.as_ref().is_some_and(|c| c.retired[e])
    }

    /// Sampled occupancy distribution of engine `e`'s queue `q` (one
    /// sample every [`OCCUPANCY_SAMPLE_PERIOD`] cycles) — the Section 4.4
    /// runahead observable.
    #[must_use]
    pub fn queue_occupancy(&self, e: usize, q: u8) -> &maple_sim::stats::Histogram {
        &self.occupancy[e][usize::from(q)]
    }

    /// Total load instructions retired across cores (Figure 10's metric).
    #[must_use]
    pub fn total_loads(&self) -> u64 {
        self.cores.iter().map(|c| c.stats().loads.get()).sum()
    }

    /// Mean load-to-use latency across cores (Figure 11's metric),
    /// weighted by load count.
    #[must_use]
    pub fn mean_load_latency(&self) -> f64 {
        let mut h = maple_sim::stats::Histogram::new();
        for c in &self.cores {
            h.merge(&c.l1_stats().load_latency);
        }
        h.mean()
    }

    // --- observability ----------------------------------------------------

    /// The hub-side observability tracer handle (disabled unless
    /// [`SocConfig::with_tracing`] was used). Mesh, L2/DRAM and chaos
    /// events emit here; core and engine events live in per-component
    /// rings so partition workers never contend — read the canonical
    /// combined stream through [`System::trace_records`].
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Canonical merge of every trace ring: cores ascending, engines
    /// ascending, hub last — a fixed order, so the merged stream is
    /// byte-identical across steppers and worker counts. Returns the
    /// records plus the total overflow count.
    fn merged_trace(&self) -> (Vec<TraceRecord>, u64) {
        let mut rings: Vec<&Tracer> = Vec::with_capacity(self.core_rings.len() + self.engine_rings.len() + 1);
        rings.extend(&self.core_rings);
        rings.extend(&self.engine_rings);
        rings.push(&self.tracer);
        let capacity = self.cfg.trace.map_or(0, |t| t.capacity);
        merge_rings(&rings, capacity)
    }

    /// Snapshot of the captured trace, oldest first, merged canonically
    /// across the per-core, per-engine and hub rings. Empty when tracing
    /// is disabled; when the merge overflowed the configured capacity
    /// only the most recent events survive (see [`System::trace_dropped`]).
    #[must_use]
    pub fn trace_records(&self) -> Vec<TraceRecord> {
        self.merged_trace().0
    }

    /// Events lost to ring overflow across every trace ring, including
    /// those the canonical merge had to shed to fit the configured
    /// capacity.
    #[must_use]
    pub fn trace_dropped(&self) -> u64 {
        self.merged_trace().1
    }

    /// Exports the captured trace in Chrome `trace_event` JSON to `path`
    /// (open in `chrome://tracing` or <https://ui.perfetto.dev>).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        maple_trace::chrome::write_chrome_trace(path, &self.trace_records())
    }

    /// Cycles core `i` has been live: issue to halt, or to now if still
    /// running.
    fn core_cycles(&self, i: usize) -> u64 {
        self.cores[i]
            .stats()
            .halted_at
            .map_or(self.now.0, |h| h.0)
    }

    /// Per-core stall attribution rows (blocking cycles split by
    /// attributed cause; `compute` is the remainder). Clustered fabrics
    /// append one aggregate row per cluster holding loaded cores, so
    /// stall attribution is readable at the hierarchy's own granularity.
    #[must_use]
    pub fn stall_rows(&self) -> Vec<StallRow> {
        let mut rows: Vec<StallRow> = (0..self.cores.len())
            .map(|i| StallRow {
                label: format!("core{i}"),
                core_cycles: self.core_cycles(i),
                breakdown: self.cores[i].stats().stall,
            })
            .collect();
        if let Some(topo) = self.cfg.fabric_topology() {
            let mut agg: Vec<(u64, StallBreakdown)> =
                vec![(0, StallBreakdown::default()); topo.clusters()];
            for i in 0..self.cores.len() {
                let c = topo.cluster_index_of(self.layout.core_tiles[i]);
                agg[c].0 += self.core_cycles(i);
                agg[c].1.merge(&self.cores[i].stats().stall);
            }
            for (c, (cycles, breakdown)) in agg.into_iter().enumerate() {
                if cycles > 0 {
                    rows.push(StallRow {
                        label: format!("cluster{c}"),
                        core_cycles: cycles,
                        breakdown,
                    });
                }
            }
        }
        rows
    }

    /// Aggregate stall attribution across every loaded core.
    #[must_use]
    pub fn stall_total(&self) -> (u64, StallBreakdown) {
        let mut total = StallBreakdown::default();
        let mut cycles = 0;
        for i in 0..self.cores.len() {
            total.merge(&self.cores[i].stats().stall);
            cycles += self.core_cycles(i);
        }
        (cycles, total)
    }

    /// One unified registry snapshot of every component's counters: the
    /// scattered per-component stats structs (`CpuStats`, `L1Stats`,
    /// `EngineStats`, `L2Stats`, `DramStats`, `MeshStats`, `ChaosStats`)
    /// rendered into named, typed metrics. Render with
    /// [`MetricsSnapshot::render_table`] or
    /// [`MetricsSnapshot::to_json`].
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut m = MetricsSnapshot::new();
        m.counter("sim/cycles", self.now.0);
        for (i, c) in self.cores.iter().enumerate() {
            let st = c.stats();
            let p = format!("core{i}");
            m.counter(format!("{p}/instructions"), st.instructions.get());
            m.counter(format!("{p}/loads"), st.loads.get());
            m.counter(format!("{p}/stores"), st.stores.get());
            m.counter(format!("{p}/atomics"), st.atomics.get());
            m.counter(format!("{p}/mem_stall_cycles"), st.mem_stall_cycles.get());
            m.counter(format!("{p}/ptw_stall_cycles"), st.ptw_stall_cycles.get());
            for (label, cycles) in st.stall.buckets() {
                m.counter(format!("{p}/stall/{label}"), cycles);
            }
            m.counter(format!("{p}/dispatch/fast_path_runs"), st.fast_path_runs.get());
            m.counter(
                format!("{p}/dispatch/fast_path_insts"),
                st.fast_path_insts.get(),
            );
            m.counter(
                format!("{p}/dispatch/interpreted_ticks"),
                st.interpreted_ticks.get(),
            );
            let l1 = c.l1_stats();
            m.counter(format!("{p}/l1/loads"), l1.loads.get());
            m.counter(format!("{p}/l1/load_hits"), l1.load_hits.get());
            m.histogram(format!("{p}/l1/load_latency"), &l1.load_latency);
        }
        for (e, eng) in self.engines.iter().enumerate() {
            let st = eng.stats();
            let p = format!("engine{e}");
            m.counter(format!("{p}/mem_fetches"), st.mem_fetches.get());
            m.counter(format!("{p}/llc_prefetches"), st.llc_prefetches.get());
            m.counter(format!("{p}/lima_completed"), st.lima_completed.get());
            m.counter(format!("{p}/produce_stalls"), st.produce_stalls.get());
            m.counter(format!("{p}/consume_stalls"), st.consume_stalls.get());
            m.counter(format!("{p}/faults"), st.faults.get());
            m.counter(format!("{p}/fetch_retries"), st.fetch_retries.get());
            m.counter(format!("{p}/acks_dropped"), st.acks_dropped.get());
            for (q, hist) in self.occupancy[e].iter().enumerate() {
                m.histogram(format!("{p}/queue{q}/occupancy"), hist);
            }
        }
        // Aggregate L2/DRAM counters over every bank: over one bank the
        // sums are the historical values byte-for-byte, so flat metrics
        // JSON is unchanged. Per-bank namespaces appear only when the
        // configuration is actually banked.
        let l2_sum = |f: fn(&maple_mem::l2::L2Stats) -> u64| {
            self.l2.iter().map(|b| f(b.stats())).sum::<u64>()
        };
        m.counter("l2/hits", l2_sum(|s| s.hits.get()));
        m.counter("l2/misses", l2_sum(|s| s.misses.get()));
        m.counter("l2/dram_fetches", l2_sum(|s| s.dram_fetches.get()));
        m.counter("l2/prefetch_fills", l2_sum(|s| s.prefetch_fills.get()));
        m.counter("l2/writes", l2_sum(|s| s.writes.get()));
        let dram = self.dram_stats();
        m.counter("dram/requests", dram.requests.get());
        m.counter("dram/spikes", dram.spikes.get());
        m.histogram("dram/latency", &dram.latency);
        if self.l2.len() > 1 {
            for (b, bank) in self.l2.iter().enumerate() {
                let s = bank.stats();
                let p = format!("l2/bank{b}");
                m.counter(format!("{p}/hits"), s.hits.get());
                m.counter(format!("{p}/misses"), s.misses.get());
                m.counter(format!("{p}/dram_fetches"), s.dram_fetches.get());
                m.counter(format!("{p}/prefetch_fills"), s.prefetch_fills.get());
                m.counter(format!("{p}/writes"), s.writes.get());
                let d = bank.dram_stats();
                m.counter(format!("dram/bank{b}/requests"), d.requests.get());
                m.counter(format!("dram/bank{b}/spikes"), d.spikes.get());
            }
        }
        let noc = self.mesh_stats();
        m.counter("noc/injected", noc.injected.get());
        m.counter("noc/delivered", noc.delivered.get());
        m.counter("noc/hops", noc.hops.get());
        m.counter("noc/dropped", noc.dropped.get());
        m.counter("noc/delayed", noc.delayed.get());
        m.histogram("noc/latency", &noc.latency);
        if let Some(global) = self.mesh.global_mesh_stats() {
            m.counter("noc/global/injected", global.injected.get());
            m.counter("noc/global/delivered", global.delivered.get());
            m.counter("noc/global/hops", global.hops.get());
            m.counter("noc/global/dropped", global.dropped.get());
            m.counter("noc/global/delayed", global.delayed.get());
            m.histogram("noc/global/latency", &global.latency);
        }
        if let Some(chaos) = self.chaos_stats() {
            m.counter("chaos/resets_injected", chaos.resets_injected.get());
            m.counter("chaos/shootdowns_injected", chaos.shootdowns_injected.get());
            m.counter("chaos/mmio_timeouts", chaos.mmio_timeouts.get());
            m.counter("chaos/mmio_retries", chaos.mmio_retries.get());
            m.counter("chaos/engines_poisoned", chaos.engines_poisoned.get());
            m.counter(
                "chaos/unserviceable_faults",
                chaos.unserviceable_faults.get(),
            );
        }
        if self.tracer.is_enabled() {
            let (records, dropped) = self.merged_trace();
            m.counter("trace/captured", records.len() as u64);
            m.counter("trace/dropped", dropped);
        }
        m
    }
}
