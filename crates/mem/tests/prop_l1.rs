//! Property test: a full L1 + L2 + DRAM stack, driven with random loads
//! and stores, always returns the values a simple memory model predicts
//! (read-your-writes, arbitrary hit/miss interleavings, MSHR merging).

#![allow(clippy::explicit_counter_loop)]

use maple_mem::dram::DramConfig;
use maple_mem::l1::{CoreOp, CoreReq, L1Cache, L1Config};
use maple_mem::l2::{L2Config, SharedL2};
use maple_mem::phys::{PAddr, PhysMem, WriteStage};
use maple_sim::Cycle;
use maple_testkit::{check, gen, tk_assert, Config, Gen, SimRng};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
enum MemOp {
    Load(u64),
    Store(u64, u64),
    VolatileLoad(u64),
    Prefetch(u64),
}

impl MemOp {
    fn addr(self) -> u64 {
        match self {
            MemOp::Load(a) | MemOp::VolatileLoad(a) | MemOp::Prefetch(a) | MemOp::Store(a, _) => a,
        }
    }
}

/// Generates 8-byte-aligned traffic over a small (16 KiB) window to force
/// aliasing, eviction and MSHR merging. Shrinks by demoting every op to a
/// plain `Load`, collapsing addresses toward zero, and zeroing store data.
struct MemOpGen;

impl Gen for MemOpGen {
    type Value = MemOp;

    fn generate(&self, rng: &mut SimRng) -> MemOp {
        let a = rng.below(2048) * 8;
        match rng.below(4) {
            0 => MemOp::Load(a),
            1 => MemOp::Store(a, rng.next_u64()),
            2 => MemOp::VolatileLoad(a),
            _ => MemOp::Prefetch(a),
        }
    }

    fn shrink(&self, op: &MemOp) -> Vec<MemOp> {
        let mut out = Vec::new();
        if !matches!(op, MemOp::Load(_)) {
            out.push(MemOp::Load(op.addr()));
        }
        // Keep candidates aligned the way generation aligns them.
        for a in gen::shrink_u64(op.addr() / 8).into_iter().take(3) {
            out.push(match *op {
                MemOp::Load(_) => MemOp::Load(a * 8),
                MemOp::Store(_, v) => MemOp::Store(a * 8, v),
                MemOp::VolatileLoad(_) => MemOp::VolatileLoad(a * 8),
                MemOp::Prefetch(_) => MemOp::Prefetch(a * 8),
            });
        }
        if let MemOp::Store(a, v) = *op {
            out.extend(gen::shrink_u64(v).into_iter().take(2).map(|v| MemOp::Store(a, v)));
        }
        out
    }
}

#[test]
fn l1_l2_stack_is_read_your_writes() {
    // Full-stack runs are slow; 32 cases still exercise every structural
    // corner thanks to the tiny L1.
    let ops_gen = gen::vec_of(MemOpGen, 0, 150);
    let cfg = Config::new("l1_l2_stack_is_read_your_writes").with_cases(32);
    check(&cfg, &ops_gen, |ops| {
        // Tiny L1 to maximize evictions.
        let mut l1 = L1Cache::new(L1Config {
            size_bytes: 512,
            ways: 2,
            ..L1Config::default()
        });
        let mut l2 = SharedL2::new(
            L2Config {
                size_bytes: 2048,
                ..L2Config::default()
            },
            DramConfig {
                latency: 20,
                ..DramConfig::default()
            },
        );
        let mut mem = PhysMem::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut now = Cycle::ZERO;
        let mut expecting: HashMap<u64, u64> = HashMap::new(); // req id -> value

        let pump = |l1: &mut L1Cache,
                    l2: &mut SharedL2,
                    mem: &mut PhysMem,
                    now: &mut Cycle,
                    expecting: &mut HashMap<u64, u64>,
                    cycles: u64| {
            for _ in 0..cycles {
                while let Some(req) = l1.pop_outgoing() {
                    l2.accept(*now, req);
                }
                l2.tick(*now, mem);
                while let Some(out) = l2.pop_outgoing() {
                    l1.on_mem_resp(*now, out.resp, mem);
                }
                while let Some(resp) = l1.pop_core_resp(*now) {
                    if let Some(expect) = expecting.remove(&resp.id) {
                        assert_eq!(resp.data, expect, "load {} returned wrong data", resp.id);
                    }
                }
                *now = now.plus(1);
            }
        };

        let mut next_id = 0u64;
        for op in ops {
            let id = next_id;
            next_id += 1;
            let (addr, core_op) = match *op {
                MemOp::Load(a) => (a, CoreOp::Load { size: 8 }),
                MemOp::VolatileLoad(a) => (a, CoreOp::LoadVolatile { size: 8 }),
                MemOp::Store(a, v) => (a, CoreOp::Store { size: 8, data: v }),
                MemOp::Prefetch(a) => (a, CoreOp::Prefetch),
            };
            // Retry until the L1 accepts (structural stalls resolve as the
            // pipeline drains).
            let mut tries = 0;
            let mut stage = WriteStage::new();
            loop {
                match l1.access(now, CoreReq { id, addr: PAddr(addr), op: core_op }, &mem, &mut stage) {
                    Ok(()) => {
                        // Single-core test: end-of-cycle apply collapses to
                        // an immediate apply (nobody else reads this cycle).
                        stage.apply(&mut mem);
                        break;
                    }
                    Err(_) => {
                        pump(&mut l1, &mut l2, &mut mem, &mut now, &mut expecting, 5);
                        tries += 1;
                        tk_assert!(tries < 10_000, "L1 wedged");
                    }
                }
            }
            match *op {
                MemOp::Store(a, v) => {
                    model.insert(a, v);
                }
                MemOp::Load(a) | MemOp::VolatileLoad(a) => {
                    expecting.insert(id, model.get(&a).copied().unwrap_or(0));
                    // Loads are blocking on the in-order core this L1
                    // serves: drain before issuing anything younger.
                    let mut waited = 0;
                    while expecting.contains_key(&id) {
                        pump(&mut l1, &mut l2, &mut mem, &mut now, &mut expecting, 5);
                        waited += 1;
                        tk_assert!(waited < 10_000, "load never completed");
                    }
                }
                MemOp::Prefetch(_) => {}
            }
        }
        // Drain everything.
        pump(&mut l1, &mut l2, &mut mem, &mut now, &mut expecting, 2000);
        tk_assert!(expecting.is_empty(), "some loads never completed");
        tk_assert!(l1.is_idle(), "L1 left with in-flight state");
        tk_assert!(l2.is_idle(), "L2 left with in-flight state");
        Ok(())
    });
}
