//! Property tests for the memory substrate: the cache tag array against a
//! reference LRU model, and the physical store against a byte map.

use maple_mem::cache::{CacheArray, CacheGeometry};
use maple_mem::phys::{AmoKind, PAddr, PhysMem};
use maple_testkit::{check, gen, tk_assert, tk_assert_eq, Config, Gen, SimRng};
use std::collections::HashMap;

/// Reference model of a set-associative LRU cache.
struct RefCache {
    sets: usize,
    ways: usize,
    /// Per set: line base addresses, most-recent last.
    content: Vec<Vec<u64>>,
}

impl RefCache {
    fn new(sets: usize, ways: usize) -> Self {
        RefCache {
            sets,
            ways,
            content: vec![Vec::new(); sets],
        }
    }

    fn set_of(&self, line: u64) -> usize {
        (line / 64) as usize % self.sets
    }

    fn access(&mut self, line: u64) -> bool {
        let s = self.set_of(line);
        if let Some(pos) = self.content[s].iter().position(|&l| l == line) {
            let l = self.content[s].remove(pos);
            self.content[s].push(l);
            true
        } else {
            false
        }
    }

    fn fill(&mut self, line: u64) -> Option<u64> {
        let s = self.set_of(line);
        if self.access(line) {
            return None;
        }
        let evicted = if self.content[s].len() == self.ways {
            Some(self.content[s].remove(0))
        } else {
            None
        };
        self.content[s].push(line);
        evicted
    }
}

#[derive(Debug, Clone, Copy)]
enum CacheOp {
    Access(u64),
    Fill(u64),
    Invalidate(u64),
}

impl CacheOp {
    fn addr(self) -> u64 {
        match self {
            CacheOp::Access(a) | CacheOp::Fill(a) | CacheOp::Invalidate(a) => a,
        }
    }

    fn with_addr(self, a: u64) -> CacheOp {
        match self {
            CacheOp::Access(_) => CacheOp::Access(a),
            CacheOp::Fill(_) => CacheOp::Fill(a),
            CacheOp::Invalidate(_) => CacheOp::Invalidate(a),
        }
    }
}

/// Generates cache operations over a 16 KiB address window; shrinks
/// addresses toward zero (collapsing traffic onto one set) and demotes
/// fills/invalidates to plain accesses.
struct CacheOpGen;

impl Gen for CacheOpGen {
    type Value = CacheOp;

    fn generate(&self, rng: &mut SimRng) -> CacheOp {
        let a = rng.below(1 << 14);
        match rng.below(3) {
            0 => CacheOp::Access(a),
            1 => CacheOp::Fill(a),
            _ => CacheOp::Invalidate(a),
        }
    }

    fn shrink(&self, op: &CacheOp) -> Vec<CacheOp> {
        let mut out = Vec::new();
        if !matches!(op, CacheOp::Access(_)) {
            out.push(CacheOp::Access(op.addr()));
        }
        out.extend(
            gen::shrink_u64(op.addr())
                .into_iter()
                .take(3)
                .map(|a| op.with_addr(a)),
        );
        out
    }
}

#[test]
fn cache_array_matches_lru_model() {
    let ops = gen::vec_of(CacheOpGen, 0, 300);
    check(&Config::new("cache_array_matches_lru_model"), &ops, |ops| {
        // 8 sets × 2 ways.
        let mut dut = CacheArray::new(CacheGeometry::new(8 * 2 * 64, 2));
        let mut model = RefCache::new(8, 2);
        for op in ops {
            match *op {
                CacheOp::Access(a) => {
                    let line = a & !63;
                    tk_assert_eq!(dut.access(PAddr(a)), model.access(line));
                }
                CacheOp::Fill(a) => {
                    let line = a & !63;
                    let ev = dut.fill(PAddr(a));
                    let ev_model = model.fill(line);
                    tk_assert_eq!(ev.map(|p| p.0), ev_model);
                }
                CacheOp::Invalidate(a) => {
                    let line = a & !63;
                    let s = model.set_of(line);
                    let had = model.content[s].iter().position(|&l| l == line);
                    if let Some(pos) = had {
                        model.content[s].remove(pos);
                    }
                    tk_assert_eq!(dut.invalidate(PAddr(a)), had.is_some());
                }
            }
        }
        let resident: usize = model.content.iter().map(Vec::len).sum();
        tk_assert_eq!(dut.resident_lines(), resident);
        Ok(())
    });
}

#[test]
fn phys_mem_matches_byte_map() {
    let writes = gen::vec_of(
        (
            gen::u64_in(0..(1 << 16)),
            gen::choice(vec![1u8, 2, 4, 8]),
            gen::u64_any(),
        ),
        0,
        200,
    );
    check(&Config::new("phys_mem_matches_byte_map"), &writes, |writes| {
        let mut dut = PhysMem::new();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for (addr, size, value) in writes {
            dut.write_uint(PAddr(*addr), *size, *value);
            for i in 0..u64::from(*size) {
                model.insert(addr + i, (value >> (8 * i)) as u8);
            }
        }
        // Every byte agrees with the model (absent = 0).
        for (addr, size, _) in writes {
            let mut expect = 0u64;
            for i in (0..u64::from(*size)).rev() {
                expect = (expect << 8) | u64::from(*model.get(&(addr + i)).unwrap_or(&0));
            }
            tk_assert_eq!(dut.read_uint(PAddr(*addr), *size), expect);
        }
        Ok(())
    });
}

#[test]
fn amo_sequences_preserve_sum() {
    let increments = gen::vec_of(gen::u64_in(1..100), 1, 49);
    check(&Config::new("amo_sequences_preserve_sum"), &increments, |increments| {
        // Fetch-add returns each intermediate value exactly once and the
        // final cell equals the sum — atomicity over any schedule.
        let mut mem = PhysMem::new();
        let addr = PAddr(0x400);
        let mut olds = Vec::new();
        for &inc in increments {
            olds.push(mem.amo(addr, 8, AmoKind::Add, inc));
        }
        let total: u64 = increments.iter().sum();
        tk_assert_eq!(mem.read_u64(addr), total);
        // The observed old values are the strictly increasing prefix sums.
        let mut acc = 0;
        for (old, inc) in olds.iter().zip(increments) {
            tk_assert_eq!(*old, acc);
            acc += inc;
        }
        tk_assert!(acc == total);
        Ok(())
    });
}
