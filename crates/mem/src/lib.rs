//! Memory hierarchy and DRAM timing models for the MAPLE SoC.
//!
//! The crate follows a **functional/timing split**: a single sparse
//! [`phys::PhysMem`] holds all data, while [`l1::L1Cache`], [`l2::SharedL2`]
//! and [`dram::Dram`] model only *when* accesses complete. Loads read the
//! backing store at completion, stores are staged per core in a
//! [`phys::WriteStage`] and applied in deterministic core order at the end
//! of the acceptance cycle, and atomics execute at the shared L2 — the one
//! serialization point — so every parallel kernel in the workspace
//! computes bit-exact results regardless of cache state. This mirrors how the paper's FPGA evaluation separates
//! correctness (the RTL) from the timing parameters it reports in Table 2.
//!
//! Components communicate over the NoC using [`msg::MemReq`] /
//! [`msg::MemResp`]; MAPLE issues exactly the same messages as an L1 cache,
//! which is the paper's central integration claim.
//!
//! # Observability
//!
//! Every [`msg::MemResp`] carries a [`msg::ServedBy`] tag naming the level
//! that produced the data (L1 / L2 / DRAM / direct DRAM / device). The tag
//! is purely observational — cores use it to attribute stall cycles — and
//! the L2/DRAM pair forwards an attached [`maple_trace::Tracer`] so DRAM
//! latency-spike fault injections appear in traces.
//!
//! # Example: an L1 miss round trip
//!
//! ```
//! use maple_mem::l1::{CoreOp, CoreReq, L1Cache, L1Config};
//! use maple_mem::msg::{MemResp, ServedBy};
//! use maple_mem::phys::{PAddr, PhysMem, WriteStage};
//! use maple_sim::Cycle;
//!
//! let mut mem = PhysMem::new();
//! mem.write_u64(PAddr(0x100), 7);
//! let mut l1 = L1Cache::new(L1Config::default());
//! let mut stage = WriteStage::new();
//! l1.access(Cycle(0), CoreReq { id: 1, addr: PAddr(0x100), op: CoreOp::Load { size: 8 } }, &mem, &mut stage)
//!     .expect("accepted");
//! let fill = l1.pop_outgoing().expect("miss goes to memory");
//! l1.on_mem_resp(Cycle(330), MemResp { id: fill.id, data: 0, served_by: ServedBy::Dram }, &mem);
//! assert_eq!(l1.pop_core_resp(Cycle(332)).unwrap().data, 7);
//! ```

#![deny(missing_docs)]

pub mod cache;
pub mod dram;
pub mod l1;
pub mod l2;
pub mod msg;
pub mod phys;

pub use phys::{PAddr, PhysMem, WriteStage, LINE_SIZE, PAGE_SIZE};
