//! Physical memory: the functional backing store.
//!
//! The workspace uses a functional/timing split: caches and DRAM model
//! *timing* with tag arrays and delay queues, while all *data* lives here in
//! a single sparse page-granular byte store. Loads read the backing store at
//! completion time, stores are staged per core in a [`WriteStage`] and
//! applied in deterministic core order at the end of the cycle, and atomics
//! are applied at the shared L2 — the single serialization point — so
//! parallel kernels compute bit-exact results regardless of cache state and
//! regardless of how the simulation itself is partitioned across host
//! threads (cores only ever *read* `PhysMem` while they tick).

use std::collections::HashMap;

/// Size of a physical page in bytes (4 KiB, as on the paper's RISC-V SoC).
pub const PAGE_SIZE: u64 = 4096;

/// Size of a cache line in bytes.
pub const LINE_SIZE: u64 = 64;

/// A physical byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PAddr(pub u64);

impl PAddr {
    /// The page frame number containing this address.
    #[must_use]
    pub fn frame(self) -> u64 {
        self.0 / PAGE_SIZE
    }

    /// Offset within the page.
    #[must_use]
    pub fn page_offset(self) -> u64 {
        self.0 % PAGE_SIZE
    }

    /// The address rounded down to its cache-line base.
    #[must_use]
    pub fn line_base(self) -> PAddr {
        PAddr(self.0 & !(LINE_SIZE - 1))
    }

    /// Byte offset within the cache line.
    #[must_use]
    pub fn line_offset(self) -> u64 {
        self.0 % LINE_SIZE
    }

    /// Address advanced by `n` bytes.
    #[must_use]
    pub fn offset(self, n: u64) -> PAddr {
        PAddr(self.0 + n)
    }
}

impl std::fmt::Display for PAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pa:{:#x}", self.0)
    }
}

/// Atomic read-modify-write operations, executed at the shared L2.
///
/// These model the RISC-V A-extension operations the kernels need: fetch-add
/// for barriers and work distribution, swap/CAS for locks and BFS visited
/// flags, min/max for relaxation updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmoKind {
    /// Fetch-and-add: returns old value, stores `old + operand`.
    Add,
    /// Swap: returns old value, stores `operand`.
    Swap,
    /// Compare-and-swap: if `old == expected` stores `operand`; returns old.
    Cas {
        /// Value the memory word must hold for the swap to occur.
        expected: u64,
    },
    /// Unsigned fetch-min.
    MinU,
    /// Unsigned fetch-max.
    MaxU,
}

/// Sparse physical memory.
///
/// Pages materialize on first touch, zero-filled — the same observable
/// behaviour as the 1 GB FPGA DRAM after Linux hands out fresh pages.
///
/// # Example
///
/// ```
/// use maple_mem::phys::{PAddr, PhysMem};
///
/// let mut m = PhysMem::new();
/// m.write_u64(PAddr(0x1000), 0xdead_beef);
/// assert_eq!(m.read_u64(PAddr(0x1000)), 0xdead_beef);
/// assert_eq!(m.read_u64(PAddr(0x2000)), 0, "untouched memory reads zero");
/// ```
#[derive(Debug, Default)]
pub struct PhysMem {
    pages: HashMap<u64, Box<[u8]>>,
}

impl PhysMem {
    /// Creates an empty memory.
    #[must_use]
    pub fn new() -> Self {
        PhysMem {
            pages: HashMap::new(),
        }
    }

    /// Number of pages materialized so far.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn page_mut(&mut self, frame: u64) -> &mut [u8] {
        self.pages
            .entry(frame)
            .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice())
    }

    fn page(&self, frame: u64) -> Option<&[u8]> {
        self.pages.get(&frame).map(|p| &p[..])
    }

    /// Reads one byte.
    #[must_use]
    pub fn read_u8(&self, addr: PAddr) -> u8 {
        self.page(addr.frame())
            .map_or(0, |p| p[addr.page_offset() as usize])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: PAddr, value: u8) {
        let off = addr.page_offset() as usize;
        self.page_mut(addr.frame())[off] = value;
    }

    /// Reads `len` bytes (may straddle pages) into a vector.
    #[must_use]
    pub fn read_bytes(&self, addr: PAddr, len: usize) -> Vec<u8> {
        (0..len as u64)
            .map(|i| self.read_u8(addr.offset(i)))
            .collect()
    }

    /// Writes a byte slice (may straddle pages).
    pub fn write_bytes(&mut self, addr: PAddr, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.offset(i as u64), b);
        }
    }

    /// Reads a naturally-ordered little-endian value of `size` bytes
    /// (1, 2, 4 or 8), zero-extended to 64 bits.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 1, 2, 4 or 8.
    #[must_use]
    pub fn read_uint(&self, addr: PAddr, size: u8) -> u64 {
        assert!(
            matches!(size, 1 | 2 | 4 | 8),
            "unsupported access size {size}"
        );
        let mut v = 0u64;
        for i in (0..u64::from(size)).rev() {
            v = (v << 8) | u64::from(self.read_u8(addr.offset(i)));
        }
        v
    }

    /// Writes the low `size` bytes of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 1, 2, 4 or 8.
    pub fn write_uint(&mut self, addr: PAddr, size: u8, value: u64) {
        assert!(
            matches!(size, 1 | 2 | 4 | 8),
            "unsupported access size {size}"
        );
        for i in 0..u64::from(size) {
            self.write_u8(addr.offset(i), (value >> (8 * i)) as u8);
        }
    }

    /// Reads a 64-bit little-endian word.
    #[must_use]
    pub fn read_u64(&self, addr: PAddr) -> u64 {
        self.read_uint(addr, 8)
    }

    /// Writes a 64-bit little-endian word.
    pub fn write_u64(&mut self, addr: PAddr, value: u64) {
        self.write_uint(addr, 8, value);
    }

    /// Reads a 32-bit little-endian word.
    #[must_use]
    pub fn read_u32(&self, addr: PAddr) -> u32 {
        self.read_uint(addr, 4) as u32
    }

    /// Writes a 32-bit little-endian word.
    pub fn write_u32(&mut self, addr: PAddr, value: u32) {
        self.write_uint(addr, 4, u64::from(value));
    }

    /// Applies an atomic read-modify-write of `size` bytes and returns the
    /// previous value.
    ///
    /// The simulator is single-threaded so the operation is trivially
    /// atomic; what matters architecturally is that *all* AMOs funnel
    /// through the shared L2, giving a single serialization order.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 4 or 8 (RISC-V A-extension widths).
    pub fn amo(&mut self, addr: PAddr, size: u8, kind: AmoKind, operand: u64) -> u64 {
        assert!(matches!(size, 4 | 8), "AMO size must be 4 or 8, got {size}");
        let old = self.read_uint(addr, size);
        let new = match kind {
            AmoKind::Add => old.wrapping_add(operand),
            AmoKind::Swap => operand,
            AmoKind::Cas { expected } => {
                if old == expected {
                    operand
                } else {
                    old
                }
            }
            AmoKind::MinU => old.min(operand),
            AmoKind::MaxU => old.max(operand),
        };
        self.write_uint(addr, size, new);
        old
    }
}

/// A per-core buffer of plain stores accepted this cycle, applied to
/// [`PhysMem`] in deterministic core order at the end of the cycle.
///
/// This is what lets every core (and engine) of a cycle tick against a
/// shared `&PhysMem`: the only memory *writer* on the core side — the L1
/// write-through store path — pushes here instead of mutating the backing
/// store, and the simulation hub drains every stage (cores in ascending
/// index order) before the shared L2 ticks. A store therefore becomes
/// visible to *other* agents exactly one cycle after acceptance, and to
/// its own core on the next cycle it can possibly issue a load (an
/// in-order core never loads on the cycle it stores) — identical timing
/// whether the system is stepped densely, with event-horizon skipping, or
/// partitioned across worker threads.
#[derive(Debug, Default)]
pub struct WriteStage {
    writes: Vec<(PAddr, u8, u64)>,
}

impl WriteStage {
    /// Creates an empty stage.
    #[must_use]
    pub fn new() -> Self {
        WriteStage { writes: Vec::new() }
    }

    /// Stages a little-endian write of the low `size` bytes of `value`.
    pub fn push(&mut self, addr: PAddr, size: u8, value: u64) {
        self.writes.push((addr, size, value));
    }

    /// Applies every staged write in push order and empties the stage.
    pub fn apply(&mut self, mem: &mut PhysMem) {
        for (addr, size, value) in self.writes.drain(..) {
            mem.write_uint(addr, size, value);
        }
    }

    /// Number of writes currently staged.
    #[must_use]
    pub fn len(&self) -> usize {
        self.writes.len()
    }

    /// Whether the stage holds no writes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paddr_helpers() {
        let a = PAddr(0x1234);
        assert_eq!(a.frame(), 1);
        assert_eq!(a.page_offset(), 0x234);
        assert_eq!(a.line_base(), PAddr(0x1200));
        assert_eq!(a.line_offset(), 0x34);
        assert_eq!(a.offset(4), PAddr(0x1238));
        assert_eq!(a.to_string(), "pa:0x1234");
    }

    #[test]
    fn zero_fill_semantics() {
        let m = PhysMem::new();
        assert_eq!(m.read_u64(PAddr(0x0dea_d000)), 0);
        assert_eq!(m.resident_pages(), 0, "reads do not materialize pages");
    }

    #[test]
    fn read_write_roundtrip_all_sizes() {
        let mut m = PhysMem::new();
        for (size, val) in [(1u8, 0xabu64), (2, 0xbeef), (4, 0xdead_beef), (8, u64::MAX - 5)]
        {
            let addr = PAddr(0x4000 + u64::from(size) * 64);
            m.write_uint(addr, size, val);
            assert_eq!(m.read_uint(addr, size), val);
        }
    }

    #[test]
    fn partial_width_masks_value() {
        let mut m = PhysMem::new();
        m.write_uint(PAddr(0x100), 2, 0xffff_ffff);
        assert_eq!(m.read_uint(PAddr(0x100), 2), 0xffff);
        assert_eq!(m.read_u8(PAddr(0x102)), 0, "adjacent bytes untouched");
    }

    #[test]
    fn cross_page_access() {
        let mut m = PhysMem::new();
        let addr = PAddr(PAGE_SIZE - 4);
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut m = PhysMem::new();
        let data: Vec<u8> = (0..100).collect();
        m.write_bytes(PAddr(0x7ff0), &data);
        assert_eq!(m.read_bytes(PAddr(0x7ff0), 100), data);
    }

    #[test]
    fn amo_add_swap() {
        let mut m = PhysMem::new();
        let a = PAddr(0x100);
        m.write_u64(a, 10);
        assert_eq!(m.amo(a, 8, AmoKind::Add, 5), 10);
        assert_eq!(m.read_u64(a), 15);
        assert_eq!(m.amo(a, 8, AmoKind::Swap, 99), 15);
        assert_eq!(m.read_u64(a), 99);
    }

    #[test]
    fn amo_cas() {
        let mut m = PhysMem::new();
        let a = PAddr(0x200);
        m.write_u32(a, 7);
        // Failing CAS leaves memory unchanged.
        assert_eq!(m.amo(a, 4, AmoKind::Cas { expected: 8 }, 1), 7);
        assert_eq!(m.read_u32(a), 7);
        // Succeeding CAS stores the new value.
        assert_eq!(m.amo(a, 4, AmoKind::Cas { expected: 7 }, 1), 7);
        assert_eq!(m.read_u32(a), 1);
    }

    #[test]
    fn amo_min_max() {
        let mut m = PhysMem::new();
        let a = PAddr(0x300);
        m.write_u64(a, 50);
        assert_eq!(m.amo(a, 8, AmoKind::MinU, 40), 50);
        assert_eq!(m.read_u64(a), 40);
        assert_eq!(m.amo(a, 8, AmoKind::MaxU, 45), 40);
        assert_eq!(m.read_u64(a), 45);
    }

    #[test]
    fn amo_32bit_wraps() {
        let mut m = PhysMem::new();
        let a = PAddr(0x400);
        m.write_u32(a, u32::MAX);
        m.amo(a, 4, AmoKind::Add, 1);
        // 32-bit add wraps within the stored 4 bytes.
        assert_eq!(m.read_u32(a), 0);
        assert_eq!(m.read_u8(a.offset(4)), 0, "no spill into next word");
    }

    #[test]
    #[should_panic(expected = "unsupported access size")]
    fn bad_size_panics() {
        let _ = PhysMem::new().read_uint(PAddr(0), 3);
    }
}
