//! DRAM timing model.
//!
//! Matches the evaluation platforms' main memory: a fixed access latency
//! (300 cycles in Tables 2 and 3) with a bounded number of outstanding
//! requests and a configurable issue bandwidth. Requests complete in issue
//! order for equal latencies but the model supports arbitrary completion
//! ordering upstream (MSHRs / transaction IDs handle reordering).

use std::collections::VecDeque;

use maple_sim::link::DelayQueue;
use maple_sim::stats::{Counter, Histogram};
use maple_sim::Cycle;

/// DRAM timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Cycles from issue to data return (paper: 300).
    pub latency: u64,
    /// Requests that may be issued per cycle (bandwidth proxy).
    pub issue_per_cycle: usize,
    /// Maximum requests in flight; further requests queue at the controller.
    pub max_outstanding: usize,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            latency: 300,
            issue_per_cycle: 1,
            max_outstanding: 64,
        }
    }
}

/// Statistics for the DRAM channel.
#[derive(Debug, Clone, Default)]
pub struct DramStats {
    /// Requests accepted.
    pub requests: Counter,
    /// Observed queueing + access latency.
    pub latency: Histogram,
    /// Accesses hit by a fault-plane latency spike.
    pub spikes: Counter,
}

/// The DRAM channel: accepts opaque tokens and returns them `latency`
/// cycles after issue, modelling controller queueing when the channel is
/// saturated.
///
/// # Example
///
/// ```
/// use maple_mem::dram::{Dram, DramConfig};
/// use maple_sim::Cycle;
///
/// let mut d: Dram<u32> = Dram::new(DramConfig::default());
/// d.request(Cycle(0), 42);
/// let mut now = Cycle(0);
/// let mut got = None;
/// while got.is_none() {
///     d.tick(now);
///     got = d.pop_completed(now);
///     now += 1;
/// }
/// assert_eq!(got, Some(42));
/// assert!(now.0 >= 300);
/// ```
#[derive(Debug)]
pub struct Dram<T> {
    cfg: DramConfig,
    pending: VecDeque<(Cycle, T)>,
    in_flight: DelayQueue<(Cycle, T)>,
    stats: DramStats,
    /// Fault-plane latency-spike schedule; `None` means nominal timing.
    fault: Option<maple_sim::fault::FaultSchedule>,
    tracer: maple_trace::Tracer,
}

impl<T> Dram<T> {
    /// Creates an idle DRAM channel.
    #[must_use]
    pub fn new(cfg: DramConfig) -> Self {
        Dram {
            cfg,
            pending: VecDeque::new(),
            in_flight: DelayQueue::new(),
            stats: DramStats::default(),
            fault: None,
            tracer: maple_trace::Tracer::disabled(),
        }
    }

    /// Installs the fault plane's DRAM latency-spike schedule.
    pub fn set_fault(&mut self, fault: maple_sim::fault::FaultSchedule) {
        self.fault = Some(fault);
    }

    /// Installs an observability tracer (latency-spike injections are
    /// recorded through it).
    pub fn set_tracer(&mut self, tracer: maple_trace::Tracer) {
        self.tracer = tracer;
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> DramConfig {
        self.cfg
    }

    /// Enqueues a request token at the controller.
    pub fn request(&mut self, now: Cycle, token: T) {
        self.stats.requests.inc();
        self.pending.push_back((now, token));
    }

    /// Issues queued requests subject to bandwidth and outstanding limits.
    pub fn tick(&mut self, now: Cycle) {
        for _ in 0..self.cfg.issue_per_cycle {
            if self.in_flight.len() >= self.cfg.max_outstanding {
                break;
            }
            let Some(entry) = self.pending.pop_front() else {
                break;
            };
            let mut latency = self.cfg.latency;
            if let Some(f) = &mut self.fault {
                if f.strike() {
                    self.stats.spikes.inc();
                    latency = latency.saturating_add(f.magnitude());
                    self.tracer.emit(now, || maple_trace::TraceEvent::FaultInjected {
                        site: maple_trace::FaultSite::DramSpike,
                    });
                }
            }
            self.in_flight.send(now, latency, entry);
        }
    }

    /// Pops one completed request, if any.
    pub fn pop_completed(&mut self, now: Cycle) -> Option<T> {
        let (requested_at, token) = self.in_flight.recv(now)?;
        self.stats.latency.record(now.since(requested_at));
        Some(token)
    }

    /// Earliest cycle at or after `now` at which ticking the channel could
    /// have an observable effect, for the event-horizon scheduler.
    ///
    /// A queued request with free outstanding capacity can issue this very
    /// cycle; otherwise the next completion (which also frees capacity for
    /// a queued request) bounds the horizon.
    #[must_use]
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut h = maple_sim::Horizon::IDLE;
        if !self.pending.is_empty() && self.in_flight.len() < self.cfg.max_outstanding {
            h.at(now);
        }
        h.observe(self.in_flight.next_deadline().map(|d| d.max(now)));
        h.earliest()
    }

    /// Requests accepted but not yet completed.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.pending.len() + self.in_flight.len()
    }

    /// Whether the channel is idle.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.outstanding() == 0
    }

    /// Channel statistics.
    #[must_use]
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }
}

impl<T> maple_sim::Clocked for Dram<T> {
    type Ctx<'a> = ();

    fn tick(&mut self, now: Cycle, (): ()) {
        Dram::tick(self, now);
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        Dram::next_event(self, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency() {
        let mut d: Dram<u8> = Dram::new(DramConfig::default());
        d.request(Cycle(0), 1);
        d.tick(Cycle(0));
        assert_eq!(d.pop_completed(Cycle(299)), None);
        assert_eq!(d.pop_completed(Cycle(300)), Some(1));
        assert!(d.is_idle());
        assert_eq!(d.stats().latency.mean(), 300.0);
    }

    #[test]
    fn bandwidth_limits_issue() {
        let cfg = DramConfig {
            latency: 10,
            issue_per_cycle: 1,
            max_outstanding: 64,
        };
        let mut d: Dram<u32> = Dram::new(cfg);
        for i in 0..4 {
            d.request(Cycle(0), i);
        }
        // One issue per cycle: completions at 10, 11, 12, 13.
        let mut completions = Vec::new();
        for c in 0..20u64 {
            d.tick(Cycle(c));
            while let Some(t) = d.pop_completed(Cycle(c)) {
                completions.push((c, t));
            }
        }
        assert_eq!(
            completions,
            vec![(10, 0), (11, 1), (12, 2), (13, 3)],
            "issue bandwidth staggers completions"
        );
    }

    #[test]
    fn outstanding_cap_backpressures() {
        let cfg = DramConfig {
            latency: 100,
            issue_per_cycle: 4,
            max_outstanding: 2,
        };
        let mut d: Dram<u32> = Dram::new(cfg);
        for i in 0..6 {
            d.request(Cycle(0), i);
        }
        d.tick(Cycle(0));
        assert_eq!(d.outstanding(), 6);
        // Only two issued; the rest wait at the controller.
        assert_eq!(d.pop_completed(Cycle(100)), Some(0));
        assert_eq!(d.pop_completed(Cycle(100)), Some(1));
        assert_eq!(d.pop_completed(Cycle(100)), None);
    }

    #[test]
    fn stats_count_requests() {
        let mut d: Dram<()> = Dram::new(DramConfig::default());
        for _ in 0..5 {
            d.request(Cycle(0), ());
        }
        assert_eq!(d.stats().requests.get(), 5);
    }

    #[test]
    fn fault_plane_spikes_latency() {
        use maple_sim::fault::FaultSchedule;
        let cfg = DramConfig {
            latency: 100,
            issue_per_cycle: 1,
            max_outstanding: 64,
        };
        let mut d: Dram<u8> = Dram::new(cfg);
        d.set_fault(FaultSchedule::new(1.0, 250, 9));
        d.request(Cycle(0), 7);
        d.tick(Cycle(0));
        assert_eq!(d.pop_completed(Cycle(349)), None, "spike adds 250 cycles");
        assert_eq!(d.pop_completed(Cycle(350)), Some(7));
        assert_eq!(d.stats().spikes.get(), 1);
    }
}
