//! Set-associative tag arrays with true-LRU replacement.
//!
//! Both L1 and L2 use [`CacheArray`] for their timing state. Because data
//! lives in the functional backing store ([`crate::phys::PhysMem`]), the
//! array tracks presence and recency only — exactly what determines
//! hit/miss timing.

use crate::phys::{PAddr, LINE_SIZE};

/// Geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (fixed at 64 across the SoC).
    pub line_bytes: u64,
}

impl CacheGeometry {
    /// Creates a geometry; line size defaults to 64 B.
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes` divides evenly into `ways` sets of 64-byte
    /// lines and the set count is a power of two.
    #[must_use]
    pub fn new(size_bytes: u64, ways: usize) -> Self {
        let g = CacheGeometry {
            size_bytes,
            ways,
            line_bytes: LINE_SIZE,
        };
        assert!(g.sets() > 0 && g.sets().is_power_of_two(), "set count must be a power of two");
        g
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        (self.size_bytes / (self.line_bytes * self.ways as u64)) as usize
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Way {
    tag: u64,
    valid: bool,
    /// Higher is more recently used.
    lru: u64,
}

/// A tag-only set-associative cache model.
///
/// # Example
///
/// ```
/// use maple_mem::cache::{CacheArray, CacheGeometry};
/// use maple_mem::phys::PAddr;
///
/// let mut c = CacheArray::new(CacheGeometry::new(8 * 1024, 4));
/// assert!(!c.probe(PAddr(0x1000)));
/// c.fill(PAddr(0x1000));
/// assert!(c.probe(PAddr(0x1000)));
/// assert!(c.probe(PAddr(0x103f)), "same line hits");
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray {
    geo: CacheGeometry,
    ways: Vec<Way>,
    clock: u64,
}

impl CacheArray {
    /// Creates an empty (all-invalid) cache.
    #[must_use]
    pub fn new(geo: CacheGeometry) -> Self {
        CacheArray {
            geo,
            ways: vec![
                Way {
                    tag: 0,
                    valid: false,
                    lru: 0
                };
                geo.sets() * geo.ways
            ],
            clock: 0,
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        self.geo
    }

    fn set_index(&self, addr: PAddr) -> usize {
        ((addr.0 / self.geo.line_bytes) as usize) & (self.geo.sets() - 1)
    }

    fn tag(&self, addr: PAddr) -> u64 {
        addr.0 / self.geo.line_bytes / self.geo.sets() as u64
    }

    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        let base = set * self.geo.ways;
        base..base + self.geo.ways
    }

    /// Whether the line containing `addr` is present, without touching LRU.
    #[must_use]
    pub fn probe(&self, addr: PAddr) -> bool {
        let tag = self.tag(addr);
        self.ways[self.set_range(self.set_index(addr))]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Looks up `addr`; on a hit, updates recency and returns `true`.
    pub fn access(&mut self, addr: PAddr) -> bool {
        let tag = self.tag(addr);
        let range = self.set_range(self.set_index(addr));
        self.clock += 1;
        let clock = self.clock;
        for w in &mut self.ways[range] {
            if w.valid && w.tag == tag {
                w.lru = clock;
                return true;
            }
        }
        false
    }

    /// Installs the line containing `addr`, evicting the LRU way if needed.
    ///
    /// Returns the base address of the evicted line, if a valid line was
    /// displaced. Idempotent when the line is already present (refreshes
    /// recency, evicts nothing).
    pub fn fill(&mut self, addr: PAddr) -> Option<PAddr> {
        let tag = self.tag(addr);
        let set = self.set_index(addr);
        let range = self.set_range(set);
        self.clock += 1;
        let clock = self.clock;

        // Already present: refresh.
        for w in &mut self.ways[range.clone()] {
            if w.valid && w.tag == tag {
                w.lru = clock;
                return None;
            }
        }
        // Free way?
        for w in &mut self.ways[range.clone()] {
            if !w.valid {
                *w = Way {
                    tag,
                    valid: true,
                    lru: clock,
                };
                return None;
            }
        }
        // Evict LRU.
        let victim_idx = range
            .clone()
            .min_by_key(|&i| self.ways[i].lru)
            .expect("non-empty set");
        let victim = self.ways[victim_idx];
        self.ways[victim_idx] = Way {
            tag,
            valid: true,
            lru: clock,
        };
        let evicted_line =
            (victim.tag * self.geo.sets() as u64 + set as u64) * self.geo.line_bytes;
        Some(PAddr(evicted_line))
    }

    /// Invalidates the line containing `addr` if present; returns whether a
    /// line was dropped.
    pub fn invalidate(&mut self, addr: PAddr) -> bool {
        let tag = self.tag(addr);
        let range = self.set_range(self.set_index(addr));
        for w in &mut self.ways[range] {
            if w.valid && w.tag == tag {
                w.valid = false;
                return true;
            }
        }
        false
    }

    /// Invalidates every line (e.g. at process teardown).
    pub fn flush_all(&mut self) {
        for w in &mut self.ways {
            w.valid = false;
        }
    }

    /// Number of valid lines currently resident.
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheArray {
        // 4 sets × 2 ways × 64 B = 512 B.
        CacheArray::new(CacheGeometry::new(512, 2))
    }

    #[test]
    fn geometry_sets() {
        assert_eq!(CacheGeometry::new(8 * 1024, 4).sets(), 32);
        assert_eq!(CacheGeometry::new(64 * 1024, 8).sets(), 128);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn geometry_rejects_non_pow2_sets() {
        let _ = CacheGeometry::new(3 * 64 * 2, 2); // 3 sets
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        let a = PAddr(0x1000);
        assert!(!c.access(a));
        assert_eq!(c.fill(a), None);
        assert!(c.access(a));
        assert!(c.access(PAddr(0x103f)), "same line");
        assert!(!c.access(PAddr(0x1040)), "next line misses");
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small(); // 2 ways per set; lines mapping to set 0: stride 4*64=256
        let line = |i: u64| PAddr(i * 256);
        c.fill(line(0));
        c.fill(line(1));
        // Touch line 0 so line 1 is LRU.
        assert!(c.access(line(0)));
        let evicted = c.fill(line(2)).expect("must evict");
        assert_eq!(evicted, line(1).line_base());
        assert!(c.probe(line(0)));
        assert!(!c.probe(line(1)));
        assert!(c.probe(line(2)));
    }

    #[test]
    fn fill_is_idempotent() {
        let mut c = small();
        let a = PAddr(0x2000);
        assert_eq!(c.fill(a), None);
        assert_eq!(c.fill(a), None);
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut c = small();
        c.fill(PAddr(0));
        c.fill(PAddr(64));
        assert!(c.invalidate(PAddr(0)));
        assert!(!c.invalidate(PAddr(0)), "second invalidate is a no-op");
        assert_eq!(c.resident_lines(), 1);
        c.flush_all();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = small();
        // 4 sets: lines 0..4 map to different sets.
        for i in 0..4u64 {
            c.fill(PAddr(i * 64));
        }
        for i in 0..4u64 {
            assert!(c.probe(PAddr(i * 64)));
        }
        assert_eq!(c.resident_lines(), 4);
    }

    #[test]
    fn eviction_returns_correct_base() {
        let mut c = small();
        // Fill set 1 (addresses with set index 1): stride 256, offset 64.
        let line = |i: u64| PAddr(64 + i * 256);
        c.fill(line(0));
        c.fill(line(1));
        let ev = c.fill(line(2)).unwrap();
        assert_eq!(ev, line(0), "LRU way in set 1 evicted with right address");
    }
}
