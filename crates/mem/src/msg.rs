//! Memory-system messages exchanged over the NoC.
//!
//! Requests flow from L1 caches (and MAPLE engines) to the shared-L2 tile or
//! to MMIO devices; responses flow back to the requester's coordinate. MAPLE
//! issues the same message types as any core — the paper's point that no
//! memory-hierarchy modification is needed.

use maple_noc::Coord;

use crate::phys::{AmoKind, PAddr};

/// What a memory request asks the shared L2 / memory controller / device to
/// do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemReqKind {
    /// Fetch a full 64-byte line into the requester's cache (L1 fill path).
    /// Allocates in L2 on the way through.
    ReadLine,
    /// Fetch a full 64-byte line directly from DRAM, bypassing L2 allocation
    /// (MAPLE's non-coherent bulk path, e.g. LIMA fetching chunks of `B`).
    ReadLineDram,
    /// Read `size` bytes at the L2 coherence point without caching in L1
    /// (volatile/shared data, MAPLE coherent loads, MMIO loads).
    ReadWord {
        /// Access width in bytes (1, 2, 4 or 8).
        size: u8,
    },
    /// Read `size` bytes directly from DRAM, bypassing the L2 (MAPLE's
    /// non-coherent load path).
    ReadWordDram {
        /// Access width in bytes (1, 2, 4 or 8).
        size: u8,
    },
    /// Store of `size` bytes.
    ///
    /// For ordinary write-through traffic `ack` is false and the functional
    /// write already happened at the L1; the L2 only updates recency. For
    /// MMIO stores `ack` is true: the device consumes `data` and returns an
    /// acknowledgement (the paper's produce path, step 4).
    Write {
        /// Access width in bytes.
        size: u8,
        /// Store data (used by MMIO devices; informational for L2).
        data: u64,
        /// Whether the requester expects an acknowledgement response.
        ack: bool,
    },
    /// Atomic read-modify-write executed at the L2 serialization point.
    Amo {
        /// The operation.
        kind: AmoKind,
        /// Access width (4 or 8).
        size: u8,
        /// Operand (added/stored/compared value).
        operand: u64,
    },
    /// Speculatively install a line in the L2 (MAPLE `PREFETCH`, DROPLET).
    /// No response is generated.
    PrefetchLine,
}

/// A request message to the shared L2 / memory controller tile or a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemReq {
    /// Requester-chosen transaction ID, echoed in the response.
    pub id: u64,
    /// Physical address of the access.
    pub addr: PAddr,
    /// Operation.
    pub kind: MemReqKind,
    /// Coordinate the response should be routed to.
    pub reply_to: Coord,
}

impl MemReq {
    /// Payload size of this request in NoC flits (8-byte units: one header
    /// flit plus a data flit for writes and AMOs).
    #[must_use]
    pub fn flits(&self) -> u8 {
        match self.kind {
            MemReqKind::Write { .. } | MemReqKind::Amo { .. } => 2,
            _ => 1,
        }
    }

    /// Whether this request generates a response message.
    #[must_use]
    pub fn expects_response(&self) -> bool {
        match self.kind {
            MemReqKind::PrefetchLine => false,
            MemReqKind::Write { ack, .. } => ack,
            _ => true,
        }
    }
}

/// Which level of the hierarchy ultimately served a response.
///
/// Carried back on every response purely for observability: the stall
/// attribution of `maple-trace` needs to know, at the moment a blocking
/// load unblocks, whether the wait was an L1 miss served by the L2, an L2
/// miss filled from DRAM, a direct-to-DRAM access, or an MMIO device
/// round trip. The field never influences timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Served locally by the requester's L1 (hit).
    L1,
    /// Served by the shared L2 (tag hit at the coherence point).
    L2,
    /// Filled from DRAM through the L2 miss path.
    Dram,
    /// Served on the direct-to-DRAM path (no L2 lookup).
    DramDirect,
    /// Answered by an MMIO device (a MAPLE engine).
    Device,
}

impl ServedBy {
    /// Short, stable label for traces and tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ServedBy::L1 => "l1",
            ServedBy::L2 => "l2",
            ServedBy::Dram => "dram",
            ServedBy::DramDirect => "dram-direct",
            ServedBy::Device => "device",
        }
    }
}

/// A response from the shared L2 / memory controller / device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResp {
    /// Echo of the request's transaction ID.
    pub id: u64,
    /// Word data for `ReadWord`/`ReadWordDram`/`Amo` (old value); zero for
    /// `ReadLine` fills and `Write` acknowledgements.
    pub data: u64,
    /// Which level served the access (observability only — see
    /// [`ServedBy`]).
    pub served_by: ServedBy,
}

impl MemResp {
    /// Size in NoC flits: a line fill carries 8 data flits plus a header;
    /// word responses carry one data flit.
    #[must_use]
    pub fn flits(is_line: bool) -> u8 {
        if is_line {
            9
        } else {
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_sizing() {
        let base = MemReq {
            id: 1,
            addr: PAddr(0x40),
            kind: MemReqKind::ReadLine,
            reply_to: Coord::new(0, 0),
        };
        assert_eq!(base.flits(), 1);
        let w = MemReq {
            kind: MemReqKind::Write {
                size: 8,
                data: 7,
                ack: false,
            },
            ..base
        };
        assert_eq!(w.flits(), 2);
        assert_eq!(MemResp::flits(true), 9);
        assert_eq!(MemResp::flits(false), 2);
    }

    #[test]
    fn response_expectations() {
        let mut r = MemReq {
            id: 0,
            addr: PAddr(0),
            kind: MemReqKind::PrefetchLine,
            reply_to: Coord::new(0, 0),
        };
        assert!(!r.expects_response());
        r.kind = MemReqKind::Write {
            size: 8,
            data: 0,
            ack: false,
        };
        assert!(!r.expects_response(), "write-through is fire-and-forget");
        r.kind = MemReqKind::Write {
            size: 8,
            data: 0,
            ack: true,
        };
        assert!(r.expects_response(), "MMIO store wants the ack");
        r.kind = MemReqKind::ReadWord { size: 8 };
        assert!(r.expects_response());
    }
}
