//! The shared L2 (last-level cache) and its memory controller.
//!
//! One tile of the SoC hosts the shared L2 (64 KB 8-way, 30-cycle access in
//! the paper's configurations) with the DRAM channel behind it. All
//! cacheable traffic, volatile word reads, and atomics are serialized here;
//! MAPLE's non-coherent loads (`ReadWordDram`/`ReadLineDram`) bypass the
//! tag array and go straight to the DRAM queue, and speculative prefetches
//! (`PrefetchLine`) install lines without generating responses — the two
//! paths Section 3.6 of the paper describes.

use std::collections::HashMap;

use maple_noc::Coord;
use maple_sim::link::DelayQueue;
use maple_sim::stats::Counter;
use maple_sim::Cycle;

use crate::cache::{CacheArray, CacheGeometry};
use crate::dram::{Dram, DramConfig};
use crate::msg::{MemReq, MemReqKind, MemResp, ServedBy};
use crate::phys::{PAddr, PhysMem};

/// Shared-L2 configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Config {
    /// Capacity in bytes (paper: 64 KB).
    pub size_bytes: u64,
    /// Associativity (paper: 8).
    pub ways: usize,
    /// Access (hit) latency in cycles (paper: 30).
    pub latency: u64,
    /// Decode latency for DRAM-direct requests that skip the tag lookup.
    pub uncached_decode_latency: u64,
}

impl Default for L2Config {
    fn default() -> Self {
        L2Config {
            size_bytes: 64 * 1024,
            ways: 8,
            latency: 30,
            uncached_decode_latency: 4,
        }
    }
}

/// A response ready to be injected into the NoC by the host tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutboundResp {
    /// Destination tile.
    pub dst: Coord,
    /// The response message.
    pub resp: MemResp,
    /// NoC flits for this response (9 for line fills, 2 for words).
    pub flits: u8,
}

/// L2 statistics.
#[derive(Debug, Clone, Default)]
pub struct L2Stats {
    /// Requests whose tag lookup hit.
    pub hits: Counter,
    /// Requests whose tag lookup missed.
    pub misses: Counter,
    /// Lines fetched from DRAM.
    pub dram_fetches: Counter,
    /// Prefetch lines installed.
    pub prefetch_fills: Counter,
    /// Write-through messages absorbed.
    pub writes: Counter,
}

#[derive(Debug)]
enum DramToken {
    /// Demand line fill; waiters are in `line_mshrs`.
    LineFill { line: PAddr },
    /// Word read that missed: fill the line and answer with data.
    WordFill { req: MemReq },
    /// Atomic that missed: fill, execute, answer with the old value.
    AmoFill { req: MemReq },
    /// Non-coherent word read: answer, never fill.
    DirectWord { req: MemReq },
    /// Non-coherent line read: answer (line-sized), never fill.
    DirectLine { req: MemReq },
    /// Speculative prefetch: fill, no answer.
    PrefetchFill { line: PAddr },
}

/// The shared L2 + memory controller component.
#[derive(Debug)]
pub struct SharedL2 {
    cfg: L2Config,
    tags: CacheArray,
    stage: DelayQueue<MemReq>,
    dram: Dram<DramToken>,
    line_mshrs: HashMap<PAddr, Vec<MemReq>>,
    out: Vec<OutboundResp>,
    stats: L2Stats,
}

impl SharedL2 {
    /// Creates an empty L2 with the given cache and DRAM configurations.
    #[must_use]
    pub fn new(cfg: L2Config, dram_cfg: DramConfig) -> Self {
        SharedL2 {
            cfg,
            tags: CacheArray::new(CacheGeometry::new(cfg.size_bytes, cfg.ways)),
            stage: DelayQueue::new(),
            dram: Dram::new(dram_cfg),
            line_mshrs: HashMap::new(),
            out: Vec::new(),
            stats: L2Stats::default(),
        }
    }

    /// The cache configuration.
    #[must_use]
    pub fn config(&self) -> L2Config {
        self.cfg
    }

    /// Accepts a request from the NoC; it completes its tag-pipeline stage
    /// after the configured latency.
    pub fn accept(&mut self, now: Cycle, req: MemReq) {
        let latency = match req.kind {
            MemReqKind::ReadWordDram { .. } | MemReqKind::ReadLineDram => {
                self.cfg.uncached_decode_latency
            }
            _ => self.cfg.latency,
        };
        self.stage.send(now, latency, req);
    }

    /// Advances the pipeline and the DRAM channel one cycle.
    pub fn tick(&mut self, now: Cycle, mem: &mut PhysMem) {
        while let Some(req) = self.stage.recv(now) {
            self.handle(now, req, mem);
        }
        self.dram.tick(now);
        while let Some(token) = self.dram.pop_completed(now) {
            self.complete(token, mem);
        }
    }

    fn respond(
        out: &mut Vec<OutboundResp>,
        req: &MemReq,
        data: u64,
        is_line: bool,
        served_by: ServedBy,
    ) {
        out.push(OutboundResp {
            dst: req.reply_to,
            resp: MemResp {
                id: req.id,
                data,
                served_by,
            },
            flits: MemResp::flits(is_line),
        });
    }

    fn handle(&mut self, now: Cycle, req: MemReq, mem: &mut PhysMem) {
        match req.kind {
            MemReqKind::ReadLine => {
                let line = req.addr.line_base();
                if self.tags.access(line) {
                    self.stats.hits.inc();
                    Self::respond(&mut self.out, &req, 0, true, ServedBy::L2);
                    return;
                }
                self.stats.misses.inc();
                let waiters = self.line_mshrs.entry(line).or_default();
                waiters.push(req);
                if waiters.len() == 1 {
                    self.stats.dram_fetches.inc();
                    self.dram.request(now, DramToken::LineFill { line });
                }
            }
            MemReqKind::ReadWord { size } => {
                if self.tags.access(req.addr) {
                    self.stats.hits.inc();
                    let data = mem.read_uint(req.addr, size);
                    Self::respond(&mut self.out, &req, data, false, ServedBy::L2);
                } else {
                    self.stats.misses.inc();
                    self.stats.dram_fetches.inc();
                    self.dram.request(now, DramToken::WordFill { req });
                }
            }
            MemReqKind::ReadWordDram { .. } => {
                self.dram.request(now, DramToken::DirectWord { req });
            }
            MemReqKind::ReadLineDram => {
                self.dram.request(now, DramToken::DirectLine { req });
            }
            MemReqKind::Write { ack, .. } => {
                debug_assert!(!ack, "MMIO writes must be routed to devices, not L2");
                self.stats.writes.inc();
                if self.tags.probe(req.addr) {
                    self.tags.access(req.addr);
                }
            }
            MemReqKind::Amo {
                kind,
                size,
                operand,
            } => {
                if self.tags.access(req.addr) {
                    self.stats.hits.inc();
                    let old = mem.amo(req.addr, size, kind, operand);
                    Self::respond(&mut self.out, &req, old, false, ServedBy::L2);
                } else {
                    self.stats.misses.inc();
                    self.stats.dram_fetches.inc();
                    self.dram.request(now, DramToken::AmoFill { req });
                }
            }
            MemReqKind::PrefetchLine => {
                let line = req.addr.line_base();
                if self.tags.probe(line) || self.line_mshrs.contains_key(&line) {
                    return; // already resident or being fetched
                }
                self.stats.dram_fetches.inc();
                self.dram.request(now, DramToken::PrefetchFill { line });
            }
        }
    }

    fn complete(&mut self, token: DramToken, mem: &mut PhysMem) {
        match token {
            DramToken::LineFill { line } => {
                self.tags.fill(line);
                for req in self.line_mshrs.remove(&line).unwrap_or_default() {
                    Self::respond(&mut self.out, &req, 0, true, ServedBy::Dram);
                }
            }
            DramToken::WordFill { req } => {
                self.tags.fill(req.addr.line_base());
                let size = match req.kind {
                    MemReqKind::ReadWord { size } => size,
                    _ => unreachable!("WordFill originates from ReadWord"),
                };
                let data = mem.read_uint(req.addr, size);
                Self::respond(&mut self.out, &req, data, false, ServedBy::Dram);
            }
            DramToken::AmoFill { req } => {
                self.tags.fill(req.addr.line_base());
                let MemReqKind::Amo {
                    kind,
                    size,
                    operand,
                } = req.kind
                else {
                    unreachable!("AmoFill originates from Amo");
                };
                let old = mem.amo(req.addr, size, kind, operand);
                Self::respond(&mut self.out, &req, old, false, ServedBy::Dram);
            }
            DramToken::DirectWord { req } => {
                let size = match req.kind {
                    MemReqKind::ReadWordDram { size } => size,
                    _ => unreachable!("DirectWord originates from ReadWordDram"),
                };
                let data = mem.read_uint(req.addr, size);
                Self::respond(&mut self.out, &req, data, false, ServedBy::DramDirect);
            }
            DramToken::DirectLine { req } => {
                Self::respond(&mut self.out, &req, 0, true, ServedBy::DramDirect);
            }
            DramToken::PrefetchFill { line } => {
                self.stats.prefetch_fills.inc();
                self.tags.fill(line);
            }
        }
    }

    /// Earliest cycle at or after `now` at which ticking the L2 could have
    /// an observable effect, for the event-horizon scheduler.
    ///
    /// Ready outbound responses pin the horizon to `now` (the host tile
    /// drains them every stepped cycle); otherwise the next tag-stage
    /// completion or DRAM event bounds it. MSHR waiters need no separate
    /// term: they were created by a DRAM fetch whose completion is already
    /// in the DRAM horizon.
    #[must_use]
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut h = maple_sim::Horizon::IDLE;
        if !self.out.is_empty() {
            h.at(now);
        }
        h.observe(self.stage.next_deadline().map(|d| d.max(now)));
        h.observe(self.dram.next_event(now));
        h.earliest()
    }

    /// Pops one response ready for NoC injection.
    pub fn pop_outgoing(&mut self) -> Option<OutboundResp> {
        if self.out.is_empty() {
            None
        } else {
            Some(self.out.remove(0))
        }
    }

    /// Whether the component holds no in-flight work.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.stage.is_empty()
            && self.dram.is_idle()
            && self.line_mshrs.is_empty()
            && self.out.is_empty()
    }

    /// Whether a line is resident (for tests and DROPLET snooping).
    #[must_use]
    pub fn contains_line(&self, addr: PAddr) -> bool {
        self.tags.probe(addr)
    }

    /// Statistics.
    #[must_use]
    pub fn stats(&self) -> &L2Stats {
        &self.stats
    }

    /// Installs the fault plane's DRAM latency-spike schedule on the
    /// backing channel.
    pub fn set_dram_fault(&mut self, fault: maple_sim::fault::FaultSchedule) {
        self.dram.set_fault(fault);
    }

    /// Installs an observability tracer on the backing DRAM channel.
    pub fn set_tracer(&mut self, tracer: maple_trace::Tracer) {
        self.dram.set_tracer(tracer);
    }

    /// Statistics of the backing DRAM channel (spike counts live here).
    #[must_use]
    pub fn dram_stats(&self) -> &crate::dram::DramStats {
        self.dram.stats()
    }
}

impl maple_sim::Clocked for SharedL2 {
    type Ctx<'a> = &'a mut PhysMem;

    fn tick(&mut self, now: Cycle, mem: &mut PhysMem) {
        SharedL2::tick(self, now, mem);
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        SharedL2::next_event(self, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2() -> (SharedL2, PhysMem) {
        (
            SharedL2::new(L2Config::default(), DramConfig::default()),
            PhysMem::new(),
        )
    }

    fn drive(l2: &mut SharedL2, mem: &mut PhysMem, from: u64, to: u64) -> Vec<(u64, OutboundResp)> {
        let mut got = Vec::new();
        for c in from..to {
            l2.tick(Cycle(c), mem);
            while let Some(r) = l2.pop_outgoing() {
                got.push((c, r));
            }
        }
        got
    }

    fn read_line_req(id: u64, addr: u64) -> MemReq {
        MemReq {
            id,
            addr: PAddr(addr),
            kind: MemReqKind::ReadLine,
            reply_to: Coord::new(1, 0),
        }
    }

    #[test]
    fn line_miss_costs_l2_plus_dram() {
        let (mut l2, mut mem) = l2();
        l2.accept(Cycle(0), read_line_req(1, 0x1000));
        let got = drive(&mut l2, &mut mem, 0, 400);
        assert_eq!(got.len(), 1);
        let (when, resp) = &got[0];
        // 30 (tag stage) + 300 (DRAM) = 330.
        assert_eq!(*when, 330);
        assert_eq!(resp.resp.id, 1);
        assert_eq!(resp.flits, 9);
        assert_eq!(l2.stats().misses.get(), 1);
        assert!(l2.is_idle());
    }

    #[test]
    fn line_hit_costs_l2_latency() {
        let (mut l2, mut mem) = l2();
        l2.accept(Cycle(0), read_line_req(1, 0x1000));
        drive(&mut l2, &mut mem, 0, 400);
        l2.accept(Cycle(400), read_line_req(2, 0x1000));
        let got = drive(&mut l2, &mut mem, 400, 500);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 430, "hit = 30-cycle stage only");
        assert_eq!(l2.stats().hits.get(), 1);
    }

    #[test]
    fn mshr_merges_same_line() {
        let (mut l2, mut mem) = l2();
        l2.accept(Cycle(0), read_line_req(1, 0x2000));
        l2.accept(Cycle(1), read_line_req(2, 0x2010));
        let got = drive(&mut l2, &mut mem, 0, 400);
        assert_eq!(got.len(), 2, "both requesters answered");
        assert_eq!(l2.stats().dram_fetches.get(), 1, "one DRAM fetch");
    }

    #[test]
    fn word_read_hit_and_miss() {
        let (mut l2, mut mem) = l2();
        mem.write_u64(PAddr(0x3000), 99);
        let word = MemReq {
            id: 5,
            addr: PAddr(0x3000),
            kind: MemReqKind::ReadWord { size: 8 },
            reply_to: Coord::new(0, 0),
        };
        l2.accept(Cycle(0), word);
        let got = drive(&mut l2, &mut mem, 0, 400);
        assert_eq!(got[0].0, 330, "miss goes to DRAM");
        assert_eq!(got[0].1.resp.data, 99);
        // Second read now hits in L2 (line was filled).
        l2.accept(Cycle(400), MemReq { id: 6, ..word });
        let got = drive(&mut l2, &mut mem, 400, 500);
        assert_eq!(got[0].0, 430);
        assert_eq!(got[0].1.resp.data, 99);
    }

    #[test]
    fn dram_direct_word_skips_tags() {
        let (mut l2, mut mem) = l2();
        mem.write_u64(PAddr(0x4000), 7);
        let req = MemReq {
            id: 1,
            addr: PAddr(0x4000),
            kind: MemReqKind::ReadWordDram { size: 8 },
            reply_to: Coord::new(0, 0),
        };
        l2.accept(Cycle(0), req);
        let got = drive(&mut l2, &mut mem, 0, 400);
        // 4 (decode) + 300 = 304.
        assert_eq!(got[0].0, 304);
        assert_eq!(got[0].1.resp.data, 7);
        assert!(!l2.contains_line(PAddr(0x4000)), "non-coherent: no fill");
    }

    #[test]
    fn dram_direct_line() {
        let (mut l2, mut mem) = l2();
        let req = MemReq {
            id: 1,
            addr: PAddr(0x9000),
            kind: MemReqKind::ReadLineDram,
            reply_to: Coord::new(0, 0),
        };
        l2.accept(Cycle(0), req);
        let got = drive(&mut l2, &mut mem, 0, 400);
        assert_eq!(got[0].1.flits, 9);
        assert!(!l2.contains_line(PAddr(0x9000)));
    }

    #[test]
    fn amo_executes_at_l2() {
        use crate::phys::AmoKind;
        let (mut l2, mut mem) = l2();
        mem.write_u64(PAddr(0x5000), 10);
        let amo = MemReq {
            id: 1,
            addr: PAddr(0x5000),
            kind: MemReqKind::Amo {
                kind: AmoKind::Add,
                size: 8,
                operand: 3,
            },
            reply_to: Coord::new(0, 0),
        };
        l2.accept(Cycle(0), amo);
        let got = drive(&mut l2, &mut mem, 0, 400);
        assert_eq!(got[0].1.resp.data, 10, "old value returned");
        assert_eq!(mem.read_u64(PAddr(0x5000)), 13);
        // Second AMO hits (line filled by the first) and is fast.
        l2.accept(Cycle(400), MemReq { id: 2, ..amo });
        let got = drive(&mut l2, &mut mem, 400, 500);
        assert_eq!(got[0].0, 430);
        assert_eq!(got[0].1.resp.data, 13);
        assert_eq!(mem.read_u64(PAddr(0x5000)), 16);
    }

    #[test]
    fn amos_serialize_in_arrival_order() {
        use crate::phys::AmoKind;
        let (mut l2, mut mem) = l2();
        // Two fetch-adds from different tiles: each must see a distinct old
        // value (atomicity), totalling 2.
        for id in 0..2 {
            l2.accept(
                Cycle(id),
                MemReq {
                    id,
                    addr: PAddr(0x6000),
                    kind: MemReqKind::Amo {
                        kind: AmoKind::Add,
                        size: 8,
                        operand: 1,
                    },
                    reply_to: Coord::new(0, 0),
                },
            );
        }
        let got = drive(&mut l2, &mut mem, 0, 800);
        let olds: Vec<u64> = got.iter().map(|(_, r)| r.resp.data).collect();
        assert_eq!(olds.len(), 2);
        assert_ne!(olds[0], olds[1], "each AMO sees a unique old value");
        assert_eq!(mem.read_u64(PAddr(0x6000)), 2);
    }

    #[test]
    fn prefetch_installs_silently() {
        let (mut l2, mut mem) = l2();
        let pf = MemReq {
            id: 1,
            addr: PAddr(0x7000),
            kind: MemReqKind::PrefetchLine,
            reply_to: Coord::new(0, 0),
        };
        l2.accept(Cycle(0), pf);
        let got = drive(&mut l2, &mut mem, 0, 400);
        assert!(got.is_empty(), "prefetch generates no response");
        assert!(l2.contains_line(PAddr(0x7000)));
        assert_eq!(l2.stats().prefetch_fills.get(), 1);
        // Duplicate prefetch is dropped.
        l2.accept(Cycle(400), pf);
        drive(&mut l2, &mut mem, 400, 800);
        assert_eq!(l2.stats().dram_fetches.get(), 1);
    }

    #[test]
    fn write_through_updates_recency_only() {
        let (mut l2, mut mem) = l2();
        let w = MemReq {
            id: 1,
            addr: PAddr(0x8000),
            kind: MemReqKind::Write {
                size: 8,
                data: 5,
                ack: false,
            },
            reply_to: Coord::new(0, 0),
        };
        l2.accept(Cycle(0), w);
        let got = drive(&mut l2, &mut mem, 0, 100);
        assert!(got.is_empty());
        assert_eq!(l2.stats().writes.get(), 1);
        assert!(!l2.contains_line(PAddr(0x8000)), "no write-allocate");
    }
}
