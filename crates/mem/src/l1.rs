//! Private L1 data cache: write-through, no-write-allocate, non-blocking.
//!
//! Matches the Ariane/OpenPiton L1D of the FPGA prototype (Table 2): 8 KB
//! 4-way, 2-cycle hits, write-through with a small store buffer, and a
//! handful of MSHRs for outstanding line fills. MMIO accesses (the MAPLE
//! API) pass through uncached, as do volatile loads and atomics.

use std::collections::{HashMap, VecDeque};

use maple_sim::link::DelayQueue;
use maple_sim::stats::{Counter, Histogram};
use maple_sim::Cycle;

use crate::cache::{CacheArray, CacheGeometry};
use crate::msg::{MemReq, MemReqKind, MemResp, ServedBy};
use crate::phys::{AmoKind, PAddr, PhysMem, WriteStage};

/// L1 configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Config {
    /// Capacity in bytes (paper: 8 KB).
    pub size_bytes: u64,
    /// Associativity (paper: 4).
    pub ways: usize,
    /// Hit latency in cycles (paper: 2).
    pub hit_latency: u64,
    /// Outstanding line-fill MSHRs.
    pub mshrs: usize,
    /// Store-buffer depth for write-through traffic.
    pub store_buffer: usize,
}

impl Default for L1Config {
    fn default() -> Self {
        L1Config {
            size_bytes: 8 * 1024,
            ways: 4,
            hit_latency: 2,
            mshrs: 8,
            store_buffer: 8,
        }
    }
}

/// An operation a core submits to its L1 port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreOp {
    /// Cacheable load of `size` bytes.
    Load {
        /// Access width (1, 2, 4 or 8).
        size: u8,
    },
    /// Uncached load served at the L2 coherence point (shared flags,
    /// software queue indices).
    LoadVolatile {
        /// Access width.
        size: u8,
    },
    /// Store of `size` bytes; completes when the store buffer accepts it.
    Store {
        /// Access width.
        size: u8,
        /// Store data.
        data: u64,
    },
    /// Atomic executed at the L2; the response carries the old value.
    Amo {
        /// Operation.
        kind: AmoKind,
        /// Width (4 or 8).
        size: u8,
        /// Operand.
        operand: u64,
    },
    /// Software prefetch into this L1 (fire-and-forget).
    Prefetch,
    /// Uncached MMIO load (e.g. MAPLE `CONSUME`).
    MmioLoad {
        /// Access width.
        size: u8,
    },
    /// Uncached MMIO store (e.g. MAPLE `PRODUCE`); acknowledged by the
    /// device before the core retires it.
    MmioStore {
        /// Access width.
        size: u8,
        /// Store data.
        data: u64,
    },
}

impl CoreOp {
    /// Whether the core should block waiting for a response.
    #[must_use]
    pub fn expects_response(self) -> bool {
        !matches!(self, CoreOp::Store { .. } | CoreOp::Prefetch)
    }
}

/// A request from the core to its L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreReq {
    /// Core-chosen ID echoed in the [`CoreResp`].
    pub id: u64,
    /// Physical address (already translated by the core's TLB).
    pub addr: PAddr,
    /// The operation.
    pub op: CoreOp,
}

/// A response from the L1 back to the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreResp {
    /// Echo of [`CoreReq::id`].
    pub id: u64,
    /// Load data / AMO old value / zero for acks.
    pub data: u64,
    /// Which level served the access (observability only; L1 hits report
    /// [`ServedBy::L1`], everything else propagates the memory response).
    pub served_by: ServedBy,
}

/// Why the L1 refused a request this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1Reject {
    /// All MSHRs are in use.
    MshrFull,
    /// The store buffer is full.
    StoreBufferFull,
}

impl std::fmt::Display for L1Reject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            L1Reject::MshrFull => write!(f, "L1 MSHRs exhausted"),
            L1Reject::StoreBufferFull => write!(f, "L1 store buffer full"),
        }
    }
}

/// L1 statistics, the source of Figures 10 and 11.
#[derive(Debug, Clone, Default)]
pub struct L1Stats {
    /// Cacheable loads issued.
    pub loads: Counter,
    /// Cacheable load hits.
    pub load_hits: Counter,
    /// Stores accepted.
    pub stores: Counter,
    /// Prefetches issued to memory.
    pub prefetches: Counter,
    /// Lines evicted by fills (prefetch thrashing shows up here).
    pub evictions: Counter,
    /// Latency from acceptance to response for loads (all flavours).
    pub load_latency: Histogram,
    /// Responses for unknown transactions, discarded. Nonzero only when
    /// the fault plane's watchdogs re-issue requests and both the original
    /// and the retried response eventually arrive.
    pub stale_responses: Counter,
}

#[derive(Debug)]
enum Origin {
    /// A demand line fill with the core requests waiting on it.
    Fill {
        line: PAddr,
        waiters: Vec<(Cycle, CoreReq)>,
    },
    /// A prefetch fill: install the line, nobody waits.
    PrefetchFill { line: PAddr },
    /// A forwarded uncached request (volatile load, AMO, MMIO).
    Forwarded { accepted: Cycle, req: CoreReq },
}

/// The L1 data cache. See the module docs for the modelled behaviour.
#[derive(Debug)]
pub struct L1Cache {
    cfg: L1Config,
    tags: CacheArray,
    next_txid: u64,
    inflight: HashMap<u64, Origin>,
    /// Demand fills in flight, by line base, for merging.
    fills_by_line: HashMap<PAddr, u64>,
    store_buffer: VecDeque<MemReq>,
    out: VecDeque<MemReq>,
    core_resp: DelayQueue<CoreResp>,
    stats: L1Stats,
}

impl L1Cache {
    /// Creates an empty L1.
    #[must_use]
    pub fn new(cfg: L1Config) -> Self {
        L1Cache {
            cfg,
            tags: CacheArray::new(CacheGeometry::new(cfg.size_bytes, cfg.ways)),
            next_txid: 0,
            inflight: HashMap::new(),
            fills_by_line: HashMap::new(),
            store_buffer: VecDeque::new(),
            out: VecDeque::new(),
            core_resp: DelayQueue::new(),
            stats: L1Stats::default(),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> L1Config {
        self.cfg
    }

    fn txid(&mut self) -> u64 {
        let id = self.next_txid;
        self.next_txid += 1;
        id
    }

    fn demand_fills(&self) -> usize {
        self.fills_by_line.len()
    }

    /// Submits a core request.
    ///
    /// Memory is read-only here; the functional effect of a plain store is
    /// pushed onto `stage` and applied by the simulation hub in
    /// deterministic core order at the end of the cycle (see
    /// [`WriteStage`]).
    ///
    /// # Errors
    ///
    /// Returns an [`L1Reject`] when a structural resource (MSHR, store
    /// buffer) is exhausted; the core should retry next cycle.
    pub fn access(
        &mut self,
        now: Cycle,
        req: CoreReq,
        mem: &PhysMem,
        stage: &mut WriteStage,
    ) -> Result<(), L1Reject> {
        match req.op {
            CoreOp::Load { size } => {
                self.stats.loads.inc();
                if self.tags.access(req.addr) {
                    self.stats.load_hits.inc();
                    let data = mem.read_uint(req.addr, size);
                    self.stats.load_latency.record(self.cfg.hit_latency);
                    self.core_resp.send(
                        now,
                        self.cfg.hit_latency,
                        CoreResp {
                            id: req.id,
                            data,
                            served_by: ServedBy::L1,
                        },
                    );
                    return Ok(());
                }
                let line = req.addr.line_base();
                if let Some(&txid) = self.fills_by_line.get(&line) {
                    // Merge into the existing fill; an in-flight prefetch
                    // is upgraded to a demand fill.
                    match self.inflight.get_mut(&txid) {
                        Some(Origin::Fill { waiters, .. }) => {
                            waiters.push((now, req));
                            return Ok(());
                        }
                        Some(origin @ Origin::PrefetchFill { .. }) => {
                            *origin = Origin::Fill {
                                line,
                                waiters: vec![(now, req)],
                            };
                            return Ok(());
                        }
                        _ => unreachable!("fills_by_line points at a live fill"),
                    }
                }
                if self.demand_fills() >= self.cfg.mshrs {
                    self.stats.loads.add(0); // no-op, placeholder for symmetry
                    return Err(L1Reject::MshrFull);
                }
                let txid = self.txid();
                self.fills_by_line.insert(line, txid);
                self.inflight.insert(
                    txid,
                    Origin::Fill {
                        line,
                        waiters: vec![(now, req)],
                    },
                );
                self.out.push_back(MemReq {
                    id: txid,
                    addr: line,
                    kind: MemReqKind::ReadLine,
                    reply_to: maple_noc::Coord::default(), // set by the tile
                });
                Ok(())
            }
            CoreOp::Prefetch => {
                if self.tags.probe(req.addr) {
                    return Ok(()); // already resident: drop
                }
                let line = req.addr.line_base();
                if self.fills_by_line.contains_key(&line) {
                    return Ok(()); // fill already in flight
                }
                if self.demand_fills() >= self.cfg.mshrs {
                    return Err(L1Reject::MshrFull);
                }
                self.stats.prefetches.inc();
                let txid = self.txid();
                self.fills_by_line.insert(line, txid);
                self.inflight.insert(txid, Origin::PrefetchFill { line });
                self.out.push_back(MemReq {
                    id: txid,
                    addr: line,
                    kind: MemReqKind::ReadLine,
                    reply_to: maple_noc::Coord::default(),
                });
                Ok(())
            }
            CoreOp::Store { size, data } => {
                if self.store_buffer.len() >= self.cfg.store_buffer {
                    return Err(L1Reject::StoreBufferFull);
                }
                self.stats.stores.inc();
                // Functional write is staged at acceptance and applied at
                // end of cycle; the line, if resident, stays resident
                // (write-through, no allocate).
                stage.push(req.addr, size, data);
                if self.tags.probe(req.addr) {
                    self.tags.access(req.addr);
                }
                let txid = self.txid();
                self.store_buffer.push_back(MemReq {
                    id: txid,
                    addr: req.addr,
                    kind: MemReqKind::Write {
                        size,
                        data,
                        ack: false,
                    },
                    reply_to: maple_noc::Coord::default(),
                });
                Ok(())
            }
            CoreOp::LoadVolatile { size } => {
                self.stats.loads.inc();
                self.forward(
                    now,
                    req,
                    MemReqKind::ReadWord { size },
                );
                Ok(())
            }
            CoreOp::Amo {
                kind,
                size,
                operand,
            } => {
                self.forward(now, req, MemReqKind::Amo { kind, size, operand });
                Ok(())
            }
            CoreOp::MmioLoad { size } => {
                self.forward(now, req, MemReqKind::ReadWord { size });
                Ok(())
            }
            CoreOp::MmioStore { size, data } => {
                self.forward(
                    now,
                    req,
                    MemReqKind::Write {
                        size,
                        data,
                        ack: true,
                    },
                );
                Ok(())
            }
        }
    }

    fn forward(&mut self, now: Cycle, req: CoreReq, kind: MemReqKind) {
        let txid = self.txid();
        self.inflight.insert(
            txid,
            Origin::Forwarded {
                accepted: now,
                req,
            },
        );
        self.out.push_back(MemReq {
            id: txid,
            addr: req.addr,
            kind,
            reply_to: maple_noc::Coord::default(),
        });
    }

    /// Delivers a memory-system response to this L1.
    ///
    /// A response for an unknown transaction (possible when a watchdog
    /// re-issued the request and both copies were answered) is counted in
    /// [`L1Stats::stale_responses`] and discarded.
    pub fn on_mem_resp(&mut self, now: Cycle, resp: MemResp, mem: &PhysMem) {
        let Some(origin) = self.inflight.remove(&resp.id) else {
            self.stats.stale_responses.inc();
            return;
        };
        match origin {
            Origin::Fill { line, waiters } => {
                self.fills_by_line.remove(&line);
                if self.tags.fill(line).is_some() {
                    self.stats.evictions.inc();
                }
                for (accepted, w) in waiters {
                    let size = match w.op {
                        CoreOp::Load { size } => size,
                        _ => unreachable!("only loads wait on fills"),
                    };
                    let data = mem.read_uint(w.addr, size);
                    let latency = now.since(accepted) + self.cfg.hit_latency;
                    self.stats.load_latency.record(latency);
                    self.core_resp.send(
                        now,
                        self.cfg.hit_latency,
                        CoreResp {
                            id: w.id,
                            data,
                            served_by: resp.served_by,
                        },
                    );
                }
            }
            Origin::PrefetchFill { line } => {
                self.fills_by_line.remove(&line);
                if self.tags.fill(line).is_some() {
                    self.stats.evictions.inc();
                }
            }
            Origin::Forwarded { accepted, req } => {
                if matches!(
                    req.op,
                    CoreOp::Load { .. }
                        | CoreOp::LoadVolatile { .. }
                        | CoreOp::MmioLoad { .. }
                ) {
                    self.stats
                        .load_latency
                        .record(now.since(accepted) + self.cfg.hit_latency);
                }
                self.core_resp.send(
                    now,
                    self.cfg.hit_latency,
                    CoreResp {
                        id: req.id,
                        data: resp.data,
                        served_by: resp.served_by,
                    },
                );
            }
        }
    }

    /// Pops the next request to inject into the NoC (one per call; the tile
    /// paces injection). Store-buffer traffic drains behind demand misses.
    pub fn pop_outgoing(&mut self) -> Option<MemReq> {
        if let Some(r) = self.out.pop_front() {
            return Some(r);
        }
        self.store_buffer.pop_front()
    }

    /// Pops a response that is ready for the core.
    pub fn pop_core_resp(&mut self, now: Cycle) -> Option<CoreResp> {
        self.core_resp.recv(now)
    }

    /// Earliest cycle at or after `now` at which this L1 could act, for
    /// the event-horizon scheduler.
    ///
    /// Pending outgoing traffic (demand misses or buffered stores) pins the
    /// horizon to `now` — the host tile paces [`L1Cache::pop_outgoing`]
    /// once per stepped cycle. Otherwise the earliest staged core response
    /// bounds it. In-flight fills need no term of their own: their memory
    /// responses arrive through the NoC/L2, which carry their own horizons.
    #[must_use]
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut h = maple_sim::Horizon::IDLE;
        if !self.out.is_empty() || !self.store_buffer.is_empty() {
            h.at(now);
        }
        h.observe(self.core_resp.next_deadline().map(|d| d.max(now)));
        h.earliest()
    }

    /// Whether any transaction is outstanding.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.inflight.is_empty()
            && self.out.is_empty()
            && self.store_buffer.is_empty()
            && self.core_resp.is_empty()
    }

    /// Cache statistics.
    #[must_use]
    pub fn stats(&self) -> &L1Stats {
        &self.stats
    }

    /// Probe without side effects (for tests and debug).
    #[must_use]
    pub fn contains_line(&self, addr: PAddr) -> bool {
        self.tags.probe(addr)
    }
}

impl maple_sim::Clocked for L1Cache {
    type Ctx<'a> = ();

    /// The L1 is passive: its owning core drains responses and the host
    /// tile drains outgoing traffic; there is no per-cycle work of its own.
    fn tick(&mut self, _now: Cycle, (): ()) {}

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        L1Cache::next_event(self, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> (L1Cache, PhysMem, WriteStage) {
        (
            L1Cache::new(L1Config::default()),
            PhysMem::new(),
            WriteStage::new(),
        )
    }

    fn load(id: u64, addr: u64) -> CoreReq {
        CoreReq {
            id,
            addr: PAddr(addr),
            op: CoreOp::Load { size: 8 },
        }
    }

    #[test]
    fn miss_goes_out_hit_after_fill() {
        let (mut c, mut mem, mut st) = l1();
        mem.write_u64(PAddr(0x1000), 77);
        c.access(Cycle(0), load(1, 0x1000), &mem, &mut st).unwrap();
        let req = c.pop_outgoing().expect("miss generates a fill");
        assert_eq!(req.kind, MemReqKind::ReadLine);
        assert_eq!(req.addr, PAddr(0x1000));
        // Response arrives later.
        c.on_mem_resp(Cycle(100), MemResp { id: req.id, data: 0, served_by: ServedBy::Dram }, &mem);
        assert_eq!(c.pop_core_resp(Cycle(101)), None);
        assert_eq!(
            c.pop_core_resp(Cycle(102)),
            Some(CoreResp { id: 1, data: 77, served_by: ServedBy::Dram })
        );
        // Second access to the same line now hits with hit latency.
        c.access(Cycle(200), load(2, 0x1008), &mem, &mut st).unwrap();
        assert!(c.pop_outgoing().is_none(), "hit: no traffic");
        assert_eq!(c.pop_core_resp(Cycle(202)), Some(CoreResp { id: 2, data: 0, served_by: ServedBy::L1 }));
        assert_eq!(c.stats().loads.get(), 2);
        assert_eq!(c.stats().load_hits.get(), 1);
    }

    #[test]
    fn mshr_merging_single_fill() {
        let (mut c, mut mem, mut st) = l1();
        mem.write_u64(PAddr(0x2000), 5);
        mem.write_u64(PAddr(0x2008), 6);
        c.access(Cycle(0), load(1, 0x2000), &mem, &mut st).unwrap();
        c.access(Cycle(0), load(2, 0x2008), &mem, &mut st).unwrap();
        let req = c.pop_outgoing().unwrap();
        assert!(c.pop_outgoing().is_none(), "second load merged into MSHR");
        c.on_mem_resp(Cycle(50), MemResp { id: req.id, data: 0, served_by: ServedBy::Dram }, &mem);
        let r1 = c.pop_core_resp(Cycle(52)).unwrap();
        let r2 = c.pop_core_resp(Cycle(52)).unwrap();
        assert_eq!((r1.data, r2.data), (5, 6));
    }

    #[test]
    fn mshr_exhaustion_rejects() {
        let cfg = L1Config {
            mshrs: 2,
            ..L1Config::default()
        };
        let mut c = L1Cache::new(cfg);
        let mem = PhysMem::new();
        let mut st = WriteStage::new();
        c.access(Cycle(0), load(1, 0x0000), &mem, &mut st).unwrap();
        c.access(Cycle(0), load(2, 0x1000), &mem, &mut st).unwrap();
        let err = c.access(Cycle(0), load(3, 0x2000), &mem, &mut st).unwrap_err();
        assert_eq!(err, L1Reject::MshrFull);
        assert!(err.to_string().contains("MSHR"));
    }

    #[test]
    fn store_writes_through() {
        let (mut c, mut mem, mut stage) = l1();
        let st = CoreReq {
            id: 9,
            addr: PAddr(0x3000),
            op: CoreOp::Store { size: 8, data: 42 },
        };
        c.access(Cycle(0), st, &mem, &mut stage).unwrap();
        assert_eq!(mem.read_u64(PAddr(0x3000)), 0, "staged, not yet applied");
        stage.apply(&mut mem);
        assert_eq!(mem.read_u64(PAddr(0x3000)), 42, "functional write at end of cycle");
        assert!(stage.is_empty(), "apply drains the stage");
        let out = c.pop_outgoing().unwrap();
        assert!(matches!(
            out.kind,
            MemReqKind::Write {
                size: 8,
                data: 42,
                ack: false
            }
        ));
        assert!(!out.expects_response());
        assert_eq!(c.stats().stores.get(), 1);
    }

    #[test]
    fn store_buffer_fills_up() {
        let cfg = L1Config {
            store_buffer: 2,
            ..L1Config::default()
        };
        let mut c = L1Cache::new(cfg);
        let mem = PhysMem::new();
        let mut st = WriteStage::new();
        for i in 0..2 {
            c.access(
                Cycle(0),
                CoreReq {
                    id: i,
                    addr: PAddr(0x100 + i * 8),
                    op: CoreOp::Store { size: 8, data: i },
                },
                &mem,
                &mut st,
            )
            .unwrap();
        }
        assert_eq!(st.len(), 2, "both stores staged");
        let err = c
            .access(
                Cycle(0),
                CoreReq {
                    id: 3,
                    addr: PAddr(0x200),
                    op: CoreOp::Store { size: 8, data: 3 },
                },
                &mem,
                &mut st,
            )
            .unwrap_err();
        assert_eq!(err, L1Reject::StoreBufferFull);
    }

    #[test]
    fn volatile_load_bypasses_tags() {
        let (mut c, mut mem, mut st) = l1();
        // Fill the line first via a demand load.
        c.access(Cycle(0), load(1, 0x4000), &mem, &mut st).unwrap();
        let fill = c.pop_outgoing().unwrap();
        c.on_mem_resp(Cycle(10), MemResp { id: fill.id, data: 0, served_by: ServedBy::Dram }, &mem);
        let _ = c.pop_core_resp(Cycle(12));
        // Volatile load to the same (resident) line still goes out.
        let v = CoreReq {
            id: 2,
            addr: PAddr(0x4000),
            op: CoreOp::LoadVolatile { size: 8 },
        };
        c.access(Cycle(20), v, &mem, &mut st).unwrap();
        let fwd = c.pop_outgoing().expect("volatile bypasses the cache");
        assert_eq!(fwd.kind, MemReqKind::ReadWord { size: 8 });
        mem.write_u64(PAddr(0x4000), 1234);
        c.on_mem_resp(Cycle(60), MemResp { id: fwd.id, data: 1234, served_by: ServedBy::Dram }, &mem);
        assert_eq!(
            c.pop_core_resp(Cycle(62)),
            Some(CoreResp { id: 2, data: 1234, served_by: ServedBy::Dram })
        );
    }

    #[test]
    fn amo_and_mmio_forwarded() {
        let (mut c, mem, mut st) = l1();
        c.access(
            Cycle(0),
            CoreReq {
                id: 1,
                addr: PAddr(0x100),
                op: CoreOp::Amo {
                    kind: AmoKind::Add,
                    size: 8,
                    operand: 1,
                },
            },
            &mem,
            &mut st,
        )
        .unwrap();
        assert!(matches!(
            c.pop_outgoing().unwrap().kind,
            MemReqKind::Amo { .. }
        ));
        c.access(
            Cycle(0),
            CoreReq {
                id: 2,
                addr: PAddr(0xf000_0000),
                op: CoreOp::MmioStore { size: 8, data: 5 },
            },
            &mem,
            &mut st,
        )
        .unwrap();
        let ms = c.pop_outgoing().unwrap();
        assert!(ms.expects_response(), "MMIO store wants an ack");
        assert_eq!(mem.read_u64(PAddr(0xf000_0000)), 0, "MMIO is not memory");
    }

    #[test]
    fn prefetch_installs_line_without_response() {
        let (mut c, mem, mut st) = l1();
        c.access(
            Cycle(0),
            CoreReq {
                id: 1,
                addr: PAddr(0x5000),
                op: CoreOp::Prefetch,
            },
            &mem,
            &mut st,
        )
        .unwrap();
        let req = c.pop_outgoing().unwrap();
        assert_eq!(req.kind, MemReqKind::ReadLine);
        c.on_mem_resp(Cycle(30), MemResp { id: req.id, data: 0, served_by: ServedBy::Dram }, &mem);
        assert_eq!(c.pop_core_resp(Cycle(40)), None, "prefetch is silent");
        assert!(c.contains_line(PAddr(0x5000)));
        assert_eq!(c.stats().prefetches.get(), 1);
        // Duplicate prefetch to a resident line is dropped.
        c.access(
            Cycle(50),
            CoreReq {
                id: 2,
                addr: PAddr(0x5000),
                op: CoreOp::Prefetch,
            },
            &mem,
            &mut st,
        )
        .unwrap();
        assert!(c.pop_outgoing().is_none());
    }

    #[test]
    fn load_latency_histogram_tracks_misses() {
        let (mut c, mem, mut st) = l1();
        c.access(Cycle(0), load(1, 0x6000), &mem, &mut st).unwrap();
        let req = c.pop_outgoing().unwrap();
        c.on_mem_resp(Cycle(330), MemResp { id: req.id, data: 0, served_by: ServedBy::Dram }, &mem);
        let _ = c.pop_core_resp(Cycle(332));
        assert_eq!(c.stats().load_latency.max(), Some(332));
    }

    #[test]
    fn idle_tracking() {
        let (mut c, mem, mut st) = l1();
        assert!(c.is_idle());
        c.access(Cycle(0), load(1, 0x0), &mem, &mut st).unwrap();
        assert!(!c.is_idle());
        let req = c.pop_outgoing().unwrap();
        c.on_mem_resp(Cycle(5), MemResp { id: req.id, data: 0, served_by: ServedBy::Dram }, &mem);
        let _ = c.pop_core_resp(Cycle(7)).unwrap();
        assert!(c.is_idle());
    }
}
