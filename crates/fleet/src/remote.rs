//! Fault-tolerant coordinator/worker batch execution.
//!
//! [`run_remote`] drives a batch of [`RemoteJob`]s over a set of
//! [`Transport`]s with a full robustness layer:
//!
//! - **Leases.** Every dispatched job holds a lease measured in
//!   coordinator polls. A worker proves liveness by replying or by
//!   sending [`Msg::Heartbeat`]; a lease that runs out of quiet polls
//!   expires and the job is *reassigned* to another worker.
//! - **At-least-once dispatch, exactly-once results.** Reassignment means
//!   a job can run twice (the expired worker may still finish). Results
//!   are keyed by dispatch id into per-job slots and by content
//!   [`crate::digest::Digest`] into the shared [`ResultCache`], so a
//!   late duplicate is counted ([`RemoteStats::stale_results`]) and
//!   dropped — the collected batch holds exactly one result per job, and
//!   because jobs are pure functions of their digest-keyed spec, *which*
//!   execution produced the payload is unobservable.
//! - **Backoff with strikes.** A worker that fails a send, breaks its
//!   connection mid-handshake, or expires a lease earns a strike and
//!   sits out an exponentially growing number of polls
//!   (`backoff_base << strikes`, no jitter — the schedule is a pure
//!   function of the history). Past
//!   [`RemoteConfig::worker_strikes`] the worker is declared dead.
//! - **Degradation ladder.** Jobs that exhaust their remote attempts —
//!   and the whole remainder of the batch once every worker is dead —
//!   fall back to the local [`crate::pool`]. The ladder mirrors the
//!   simulator's `maple-dec → sw-dec → do-all` recovery ladder:
//!   remote → degraded → local, reported per batch as [`Rung`].
//!
//! The coordinator is single-threaded and polls workers in index order,
//! so over deterministic transports (loopback, seeded
//! [`crate::net::FaultyTransport`]) an entire batch — counters included —
//! replays bit-for-bit. Wall-clock enters only through the optional
//! [`RemoteConfig::poll_sleep`], which trades CPU for latency on real
//! sockets and is irrelevant to the result surface.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::mpsc;
use std::time::Duration;

use crate::cache::ResultCache;
use crate::net::{Msg, RemoteError, Transport, PROTOCOL_VERSION};
use crate::pool::{self, FailureKind, FleetConfig, JobError};

/// One unit of remote work: an opaque spec string the worker's runner
/// understands, plus the content key its result is cached under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteJob {
    /// Content digest of the full case descriptor (cache key).
    pub key: u64,
    /// Opaque job descriptor (the bench layer uses a TSV spec).
    pub spec: String,
}

/// Coordinator tuning. All deadlines are measured in coordinator polls,
/// not wall-clock, so tests replay exactly.
#[derive(Debug, Clone)]
pub struct RemoteConfig {
    /// Quiet polls (no reply, no heartbeat) before a dispatched job's
    /// lease expires and the job is reassigned.
    pub lease_polls: u64,
    /// Remote dispatch attempts granted per job before it stops being
    /// requeued and waits for the local fallback rung.
    pub job_attempts: u32,
    /// Strikes (send failures, lease expiries, handshake timeouts) a
    /// worker survives before being declared dead.
    pub worker_strikes: u32,
    /// Base backoff, in polls: a worker with `s` strikes sits out
    /// `backoff_base << s` polls. No jitter by design — retry schedules
    /// replay bit-for-bit.
    pub backoff_base: u64,
    /// Optional hard poll budget; exceeding it aborts the batch with
    /// [`RemoteError::Aborted`]. Completed results are already in the
    /// cache, which is how a restarted coordinator resumes cheaply.
    pub poll_budget: Option<u64>,
    /// Optional sleep between poll sweeps (for real sockets; `None` for
    /// loopback tests and maximum determinism).
    pub poll_sleep: Option<Duration>,
}

impl Default for RemoteConfig {
    fn default() -> Self {
        RemoteConfig {
            lease_polls: 64,
            job_attempts: 3,
            worker_strikes: 2,
            backoff_base: 4,
            poll_budget: None,
            poll_sleep: None,
        }
    }
}

impl RemoteConfig {
    /// Sets the lease length in polls.
    #[must_use]
    pub fn with_lease_polls(mut self, polls: u64) -> Self {
        self.lease_polls = polls;
        self
    }

    /// Sets the per-job remote attempt budget.
    #[must_use]
    pub fn with_job_attempts(mut self, attempts: u32) -> Self {
        self.job_attempts = attempts;
        self
    }

    /// Sets the per-worker strike budget.
    #[must_use]
    pub fn with_worker_strikes(mut self, strikes: u32) -> Self {
        self.worker_strikes = strikes;
        self
    }

    /// Sets the base backoff in polls.
    #[must_use]
    pub fn with_backoff_base(mut self, polls: u64) -> Self {
        self.backoff_base = polls;
        self
    }

    /// Sets the hard poll budget (coordinator-restart test hook).
    #[must_use]
    pub fn with_poll_budget(mut self, polls: u64) -> Self {
        self.poll_budget = Some(polls);
        self
    }

    /// Sets the inter-sweep sleep for real-socket runs.
    #[must_use]
    pub fn with_poll_sleep(mut self, sleep: Duration) -> Self {
        self.poll_sleep = Some(sleep);
        self
    }
}

/// Which rung of the degradation ladder the batch finished on. Ordered
/// by severity: merging two reports keeps the worse rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// Every computed job ran on a remote worker.
    Remote,
    /// Some jobs ran remotely, some fell back to the local pool.
    Degraded,
    /// Every computed job ran on the local pool (no usable worker).
    Local,
}

impl Rung {
    /// Short stable label for report lines.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Rung::Remote => "remote",
            Rung::Degraded => "degraded",
            Rung::Local => "local",
        }
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Batch-level accounting for one [`run_remote`] call. Over
/// deterministic transports every field replays exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteStats {
    /// Jobs submitted.
    pub jobs: usize,
    /// Transports the batch started with.
    pub workers: usize,
    /// Jobs answered straight from the shared cache.
    pub cache_hits: usize,
    /// Jobs computed by a remote worker.
    pub remote_done: usize,
    /// Jobs computed by the local fallback pool.
    pub local_done: usize,
    /// Times a dispatched job was taken away and requeued (lease expiry,
    /// worker death, or a typed remote failure with budget left).
    pub reassignments: u64,
    /// Leases that expired without a result or heartbeat.
    pub lease_expiries: u64,
    /// Workers declared dead (strikes exhausted, connection broken, or
    /// incompatible version).
    pub worker_failures: u64,
    /// Sends that failed and were charged as a strike.
    pub send_failures: u64,
    /// Duplicate results from reassigned jobs, received and dropped.
    pub stale_results: u64,
    /// Coordinator poll sweeps performed.
    pub polls: u64,
    /// Workers still usable when the batch completed.
    pub live_workers: usize,
    /// Final rung of the degradation ladder.
    pub rung: Rung,
}

/// A completed remote batch: one outcome per job in submission order,
/// plus the accounting.
#[derive(Debug)]
pub struct RemoteBatch {
    /// Per-job results, submission order. `Err` only when the job failed
    /// on *every* rung of the ladder.
    pub outcomes: Vec<Result<String, JobError>>,
    /// Batch accounting.
    pub stats: RemoteStats,
}

/// Per-worker coordinator-side state machine.
#[derive(Debug)]
enum WorkerState {
    /// Needs to (re)send [`Msg::Hello`].
    Greet,
    /// Hello sent, waiting for [`Msg::Welcome`]; counts quiet polls.
    AwaitWelcome { quiet: u64 },
    /// Handshaken and free.
    Idle,
    /// Computing `job` under dispatch id `dispatch`.
    Busy { job: usize, dispatch: u64, quiet: u64 },
    /// Sitting out a strike until poll `until`.
    Backoff { until: u64 },
    /// Unusable for the rest of the batch.
    Dead,
}

struct Worker {
    transport: Box<dyn Transport>,
    state: WorkerState,
    strikes: u32,
    greeted: bool,
}

impl Worker {
    fn live(&self) -> bool {
        !matches!(self.state, WorkerState::Dead)
    }
}

/// Runs `jobs` across `transports` with leases, backoff, reassignment and
/// local fallback; results come back in submission order. `local` is the
/// bottom rung of the ladder — it must compute the same pure function of
/// the spec as the remote runners (the determinism contract: results are
/// location-independent because the digest key pins all inputs).
///
/// # Errors
///
/// [`RemoteError::Aborted`] when [`RemoteConfig::poll_budget`] runs out —
/// the only error surface; every other failure degrades instead. Results
/// computed before the abort are already in `cache`.
///
/// # Panics
///
/// Panics only on coordinator-internal bookkeeping violations (a result
/// slot missing after the drain), never on remote misbehavior.
pub fn run_remote(
    transports: Vec<Box<dyn Transport>>,
    cfg: &RemoteConfig,
    jobs: &[RemoteJob],
    cache: Option<&ResultCache>,
    local: impl Fn(&RemoteJob) -> Result<String, String> + Sync,
) -> Result<RemoteBatch, RemoteError> {
    let mut stats = RemoteStats {
        jobs: jobs.len(),
        workers: transports.len(),
        cache_hits: 0,
        remote_done: 0,
        local_done: 0,
        reassignments: 0,
        lease_expiries: 0,
        worker_failures: 0,
        send_failures: 0,
        stale_results: 0,
        polls: 0,
        live_workers: 0,
        rung: Rung::Remote,
    };
    let mut slots: Vec<Option<Result<String, JobError>>> = vec![None; jobs.len()];

    // Rung 0: the shared cache answers everything already computed —
    // including by a previous coordinator that died mid-batch.
    if let Some(cache) = cache {
        for (i, job) in jobs.iter().enumerate() {
            if let Some(hit) = cache.get(job.key) {
                slots[i] = Some(Ok(hit));
                stats.cache_hits += 1;
            }
        }
    }

    let mut workers: Vec<Worker> = transports
        .into_iter()
        .map(|transport| Worker {
            transport,
            state: WorkerState::Greet,
            strikes: 0,
            greeted: false,
        })
        .collect();
    let mut pending: VecDeque<usize> = (0..jobs.len()).filter(|&i| slots[i].is_none()).collect();
    let mut attempts: Vec<u32> = vec![0; jobs.len()];
    let mut dispatched: HashMap<u64, usize> = HashMap::new();
    let mut dispatch_seq: u64 = 0;

    while slots.iter().any(Option::is_none) {
        if workers.iter().all(|w| !w.live()) {
            break; // every worker dead: drain the rest locally
        }
        let any_busy = workers
            .iter()
            .any(|w| matches!(w.state, WorkerState::Busy { .. }));
        if pending.is_empty() && !any_busy {
            break; // nothing in flight, nothing dispatchable: local rung
        }
        if let Some(budget) = cfg.poll_budget {
            if stats.polls >= budget {
                for w in &mut workers {
                    if w.live() {
                        let _ = w.transport.send(&Msg::Bye);
                    }
                }
                return Err(RemoteError::Aborted { polls: stats.polls });
            }
        }

        for (wi, w) in workers.iter_mut().enumerate() {
            let state = std::mem::replace(&mut w.state, WorkerState::Dead);
            let next = match state {
                WorkerState::Dead => WorkerState::Dead,
                WorkerState::Greet => {
                    match w.transport.send(&Msg::Hello {
                        version: PROTOCOL_VERSION,
                        worker: wi as u64,
                    }) {
                        Ok(()) => WorkerState::AwaitWelcome { quiet: 0 },
                        Err(_) => {
                            stats.send_failures += 1;
                            strike(w, wi, cfg, &mut stats, None)
                        }
                    }
                }
                WorkerState::AwaitWelcome { quiet } => {
                    match w.transport.poll() {
                        Ok(Some(Msg::Welcome { version })) => {
                            if version == PROTOCOL_VERSION {
                                w.greeted = true;
                                WorkerState::Idle
                            } else {
                                // Incompatible peer: permanently unusable,
                                // no point in backoff.
                                stats.worker_failures += 1;
                                WorkerState::Dead
                            }
                        }
                        Ok(Some(_)) | Ok(None) => {
                            let quiet = quiet + 1;
                            if quiet > cfg.lease_polls {
                                strike(w, wi, cfg, &mut stats, None)
                            } else {
                                WorkerState::AwaitWelcome { quiet }
                            }
                        }
                        Err(_) => {
                            stats.worker_failures += 1;
                            WorkerState::Dead
                        }
                    }
                }
                WorkerState::Backoff { until } => {
                    if stats.polls >= until {
                        if w.greeted {
                            WorkerState::Idle
                        } else {
                            WorkerState::Greet
                        }
                    } else {
                        WorkerState::Backoff { until }
                    }
                }
                WorkerState::Idle => {
                    // Skip queue entries whose slot a stale duplicate
                    // already filled.
                    let job = loop {
                        match pending.pop_front() {
                            Some(j) if slots[j].is_none() => break Some(j),
                            Some(_) => {}
                            None => break None,
                        }
                    };
                    match job {
                        None => WorkerState::Idle,
                        Some(j) => {
                            attempts[j] += 1;
                            dispatch_seq += 1;
                            let dispatch = dispatch_seq;
                            dispatched.insert(dispatch, j);
                            match w.transport.send(&Msg::Job {
                                dispatch,
                                key: jobs[j].key,
                                spec: jobs[j].spec.clone(),
                            }) {
                                Ok(()) => WorkerState::Busy {
                                    job: j,
                                    dispatch,
                                    quiet: 0,
                                },
                                Err(_) => {
                                    // The job never left: not a real
                                    // attempt, back to the queue front.
                                    stats.send_failures += 1;
                                    attempts[j] -= 1;
                                    pending.push_front(j);
                                    strike(w, wi, cfg, &mut stats, None)
                                }
                            }
                        }
                    }
                }
                WorkerState::Busy { job, dispatch, quiet } => {
                    match w.transport.poll() {
                        Ok(Some(Msg::Done {
                            dispatch: d,
                            payload,
                            ..
                        })) => {
                            if let Some(&j) = dispatched.get(&d) {
                                resolve(
                                    &mut slots, &mut stats, cache, jobs, j,
                                    Ok(payload),
                                    Origin::Remote,
                                );
                            }
                            if d == dispatch {
                                WorkerState::Idle
                            } else {
                                // A stale result from a lease this worker
                                // expired earlier; it is still computing
                                // its current assignment.
                                WorkerState::Busy { job, dispatch, quiet: 0 }
                            }
                        }
                        Ok(Some(Msg::Failed {
                            dispatch: d,
                            message,
                        })) => {
                            if let Some(&j) = dispatched.get(&d) {
                                if slots[j].is_none() {
                                    if attempts[j] < cfg.job_attempts {
                                        // Budget left: try another worker.
                                        stats.reassignments += 1;
                                        pending.push_back(j);
                                    } else {
                                        // Remote budget exhausted: leave
                                        // the slot open for the local
                                        // rung; remember the message in
                                        // case local also fails.
                                        // (Nothing to record here — the
                                        // local rung produces the final
                                        // error if it fails too.)
                                    }
                                }
                            }
                            let _ = message;
                            if d == dispatch {
                                WorkerState::Idle
                            } else {
                                WorkerState::Busy { job, dispatch, quiet: 0 }
                            }
                        }
                        Ok(Some(Msg::Heartbeat { dispatch: d })) => {
                            let quiet = if d == dispatch { 0 } else { quiet + 1 };
                            WorkerState::Busy { job, dispatch, quiet }
                        }
                        Ok(Some(_)) => {
                            // Protocol noise (e.g. a duplicate Welcome
                            // after a re-greet): ignored, lease advances.
                            WorkerState::Busy { job, dispatch, quiet: quiet + 1 }
                        }
                        Ok(None) => {
                            let quiet = quiet + 1;
                            if quiet > cfg.lease_polls {
                                stats.lease_expiries += 1;
                                requeue(
                                    &slots, &mut pending, &attempts, cfg, &mut stats, job,
                                );
                                strike(w, wi, cfg, &mut stats, None)
                            } else {
                                WorkerState::Busy { job, dispatch, quiet }
                            }
                        }
                        Err(_) => {
                            // Connection gone with a job in flight: the
                            // worker-crash-mid-job path.
                            stats.worker_failures += 1;
                            requeue(&slots, &mut pending, &attempts, cfg, &mut stats, job);
                            WorkerState::Dead
                        }
                    }
                }
            };
            w.state = next;
        }

        stats.polls += 1;
        if let Some(sleep) = cfg.poll_sleep {
            std::thread::sleep(sleep);
        }
    }

    // Bottom rung: whatever is still unresolved runs on the local pool.
    let remaining: Vec<usize> = (0..jobs.len()).filter(|&i| slots[i].is_none()).collect();
    if !remaining.is_empty() {
        let local = &local;
        let batch = pool::run_batch(
            &FleetConfig::from_env(),
            remaining
                .iter()
                .map(|&i| {
                    let job = &jobs[i];
                    move || local(job)
                })
                .collect::<Vec<_>>(),
        );
        for (&i, outcome) in remaining.iter().zip(batch.outcomes) {
            let value = match outcome.result {
                Ok(Ok(payload)) => Ok(payload),
                Ok(Err(message)) => Err(JobError {
                    message,
                    attempts: attempts[i] + outcome.stats.attempts,
                    kind: FailureKind::Exec,
                }),
                Err(mut e) => {
                    e.attempts += attempts[i];
                    Err(e)
                }
            };
            resolve(&mut slots, &mut stats, cache, jobs, i, value, Origin::Local);
        }
    }

    for w in &mut workers {
        if w.live() {
            let _ = w.transport.send(&Msg::Bye);
        }
    }
    stats.live_workers = workers.iter().filter(|w| w.live()).count();
    stats.rung = match (stats.remote_done, stats.local_done) {
        (_, 0) => Rung::Remote,
        (0, _) => Rung::Local,
        _ => Rung::Degraded,
    };

    let outcomes = slots
        .into_iter()
        .map(|s| s.expect("every job resolved by the local rung"))
        .collect();
    Ok(RemoteBatch { outcomes, stats })
}

/// Where a resolved result came from (for accounting).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Origin {
    Remote,
    Local,
}

/// Fills job `j`'s slot; a duplicate (reassigned job finishing twice) is
/// counted and dropped. Successful payloads are published to the shared
/// cache so other coordinators — and a restarted one — can reuse them.
fn resolve(
    slots: &mut [Option<Result<String, JobError>>],
    stats: &mut RemoteStats,
    cache: Option<&ResultCache>,
    jobs: &[RemoteJob],
    j: usize,
    value: Result<String, JobError>,
    origin: Origin,
) {
    if slots[j].is_some() {
        stats.stale_results += 1;
        return;
    }
    if let (Some(cache), Ok(payload)) = (cache, &value) {
        if let Err(e) = cache.put(jobs[j].key, payload) {
            // A broken cache degrades sharing, not the batch.
            eprintln!(
                "[maple-fleet] cache write failed for key {:016x}: {e}",
                jobs[j].key
            );
        }
    }
    if value.is_ok() {
        match origin {
            Origin::Remote => stats.remote_done += 1,
            Origin::Local => stats.local_done += 1,
        }
    } else if origin == Origin::Local {
        // A job that failed even the local rung still "consumed" local
        // compute; count it so the rung reflects the fallback.
        stats.local_done += 1;
    }
    slots[j] = Some(value);
}

/// Puts a dispatched job back in the queue after its worker failed it
/// (unless a stale duplicate already resolved it, or its remote budget
/// is spent — then the local rung picks it up).
fn requeue(
    slots: &[Option<Result<String, JobError>>],
    pending: &mut VecDeque<usize>,
    attempts: &[u32],
    cfg: &RemoteConfig,
    stats: &mut RemoteStats,
    job: usize,
) {
    if slots[job].is_none() {
        stats.reassignments += 1;
        if attempts[job] < cfg.job_attempts {
            pending.push_back(job);
        }
    }
}

/// Charges worker `wi` a strike: exponential backoff while budget lasts,
/// death after.
fn strike(
    worker: &mut Worker,
    _wi: usize,
    cfg: &RemoteConfig,
    stats: &mut RemoteStats,
    _detail: Option<&RemoteError>,
) -> WorkerState {
    worker.strikes += 1;
    if worker.strikes > cfg.worker_strikes {
        stats.worker_failures += 1;
        WorkerState::Dead
    } else {
        let shift = worker.strikes.min(16);
        WorkerState::Backoff {
            until: stats.polls + (cfg.backoff_base << shift),
        }
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Serves one coordinator session on `transport`: handshake, then a
/// job/reply loop until [`Msg::Bye`] or disconnect. `runner` computes
/// each spec; while it runs (on a scoped thread), the serve loop sends
/// [`Msg::Heartbeat`] every `heartbeat` so long jobs outlive their lease.
/// Pass a zero `heartbeat` to run jobs inline with no heartbeats (useful
/// for tests of the expiry path).
///
/// Returns the number of jobs served.
///
/// # Errors
///
/// Typed [`RemoteError`]s for handshake violations; a plain disconnect
/// after the handshake is a normal end of session, not an error.
pub fn serve_connection<F>(
    transport: &mut dyn Transport,
    heartbeat: Duration,
    runner: F,
) -> Result<u64, RemoteError>
where
    F: Fn(&str) -> Result<String, String> + Sync,
{
    let idle = Duration::from_millis(1);
    // Handshake: wait for Hello, answer Welcome.
    loop {
        match transport.poll()? {
            Some(Msg::Hello { version, .. }) => {
                transport.send(&Msg::Welcome {
                    version: PROTOCOL_VERSION,
                })?;
                if version != PROTOCOL_VERSION {
                    return Err(RemoteError::VersionMismatch {
                        ours: PROTOCOL_VERSION,
                        theirs: version,
                    });
                }
                break;
            }
            Some(other) => {
                return Err(RemoteError::Protocol(format!(
                    "expected Hello, got {other:?}"
                )))
            }
            None => std::thread::sleep(idle),
        }
    }

    let mut served = 0u64;
    loop {
        match transport.poll() {
            Ok(Some(Msg::Job { dispatch, key, spec })) => {
                let result = run_with_heartbeats(transport, heartbeat, dispatch, &spec, &runner)?;
                match result {
                    Ok(payload) => transport.send(&Msg::Done {
                        dispatch,
                        key,
                        payload,
                    })?,
                    Err(message) => transport.send(&Msg::Failed { dispatch, message })?,
                }
                served += 1;
            }
            Ok(Some(Msg::Bye)) | Err(RemoteError::Disconnected) => return Ok(served),
            Ok(Some(Msg::Hello { .. })) => {
                // The coordinator re-greeted (its first Hello or our
                // Welcome was lost); answer again.
                transport.send(&Msg::Welcome {
                    version: PROTOCOL_VERSION,
                })?;
            }
            Ok(Some(other)) => {
                return Err(RemoteError::Protocol(format!(
                    "worker received {other:?}"
                )))
            }
            Ok(None) => std::thread::sleep(idle),
            Err(e) => return Err(e),
        }
    }
}

/// Runs one job while keeping its lease alive. With a zero heartbeat the
/// runner executes inline; otherwise it runs on a scoped thread and the
/// calling thread emits heartbeats until the result lands.
fn run_with_heartbeats<F>(
    transport: &mut dyn Transport,
    heartbeat: Duration,
    dispatch: u64,
    spec: &str,
    runner: &F,
) -> Result<Result<String, String>, RemoteError>
where
    F: Fn(&str) -> Result<String, String> + Sync,
{
    if heartbeat.is_zero() {
        return Ok(runner(spec));
    }
    std::thread::scope(|s| {
        let (tx, rx) = mpsc::channel();
        s.spawn(move || {
            let _ = tx.send(runner(spec));
        });
        loop {
            match rx.recv_timeout(heartbeat) {
                Ok(result) => return Ok(result),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    transport.send(&Msg::Heartbeat { dispatch })?;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Ok(Err("worker runner thread died".to_owned()))
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{FaultyTransport, LoopbackWorker, NetFaultConfig, TcpTransport};
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    fn jobs(n: usize) -> Vec<RemoteJob> {
        (0..n)
            .map(|i| RemoteJob {
                key: 0x9000 + i as u64,
                spec: format!("job-{i}"),
            })
            .collect()
    }

    fn answer(spec: &str) -> String {
        format!("answer:{spec}")
    }

    fn loopback_fleet(n: usize) -> Vec<Box<dyn Transport>> {
        (0..n)
            .map(|_| Box::new(LoopbackWorker::new(|s| Ok(answer(s)))) as Box<dyn Transport>)
            .collect()
    }

    fn expect_all_ok(batch: &RemoteBatch, n: usize) {
        assert_eq!(batch.outcomes.len(), n);
        for (i, o) in batch.outcomes.iter().enumerate() {
            assert_eq!(
                o.as_deref().expect("job succeeds"),
                answer(&format!("job-{i}")),
                "job {i}"
            );
        }
    }

    #[test]
    fn loopback_batch_runs_fully_remote() {
        let batch = run_remote(
            loopback_fleet(1),
            &RemoteConfig::default(),
            &jobs(6),
            None,
            |_| panic!("local rung must not run"),
        )
        .unwrap();
        expect_all_ok(&batch, 6);
        assert_eq!(batch.stats.remote_done, 6);
        assert_eq!(batch.stats.local_done, 0);
        assert_eq!(batch.stats.rung, Rung::Remote);
        assert_eq!(batch.stats.live_workers, 1);
    }

    #[test]
    fn outcomes_and_stats_are_identical_at_any_worker_count() {
        let run = |workers: usize| {
            let batch = run_remote(
                loopback_fleet(workers),
                &RemoteConfig::default(),
                &jobs(11),
                None,
                |_| panic!("local rung must not run"),
            )
            .unwrap();
            batch.outcomes
        };
        let reference = run(1);
        for workers in [2, 3, 4, 8] {
            assert_eq!(run(workers), reference, "workers={workers}");
        }
        // And replay determinism, counters included.
        let again = |workers| {
            run_remote(
                loopback_fleet(workers),
                &RemoteConfig::default(),
                &jobs(11),
                None,
                |_| panic!(),
            )
            .unwrap()
            .stats
        };
        assert_eq!(again(3), again(3));
    }

    #[test]
    fn no_workers_at_all_degrades_to_local() {
        let batch = run_remote(
            Vec::new(),
            &RemoteConfig::default(),
            &jobs(4),
            None,
            |job| Ok(answer(&job.spec)),
        )
        .unwrap();
        expect_all_ok(&batch, 4);
        assert_eq!(batch.stats.rung, Rung::Local);
        assert_eq!(batch.stats.local_done, 4);
    }

    #[test]
    fn cache_pools_results_across_coordinators() {
        let dir = std::env::temp_dir().join(format!(
            "maple-fleet-remote-cache-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        let js = jobs(5);

        let first = run_remote(
            loopback_fleet(2),
            &RemoteConfig::default(),
            &js,
            Some(&cache),
            |_| panic!("local rung must not run"),
        )
        .unwrap();
        assert_eq!(first.stats.cache_hits, 0);
        assert_eq!(first.stats.remote_done, 5);

        // Second coordinator, same cache: answered without any dispatch.
        let calls = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&calls);
        let counting: Vec<Box<dyn Transport>> = vec![Box::new(LoopbackWorker::new(move |s| {
            c.fetch_add(1, Ordering::SeqCst);
            Ok(answer(s))
        }))];
        let second = run_remote(
            counting,
            &RemoteConfig::default(),
            &js,
            Some(&cache),
            |_| panic!("local rung must not run"),
        )
        .unwrap();
        expect_all_ok(&second, 5);
        assert_eq!(second.stats.cache_hits, 5);
        assert_eq!(second.stats.remote_done, 0);
        assert_eq!(calls.load(Ordering::SeqCst), 0, "no job reached a worker");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lease_expiry_reassigns_to_a_healthy_worker() {
        // Worker 0 is silent far past the lease; worker 1 is instant.
        let slow = LoopbackWorker::new(|s| Ok(answer(s))).with_work_polls(10_000);
        let fast = LoopbackWorker::new(|s| Ok(answer(s)));
        let cfg = RemoteConfig::default().with_lease_polls(8);
        let batch = run_remote(
            vec![Box::new(slow), Box::new(fast)],
            &cfg,
            &jobs(4),
            None,
            |_| panic!("local rung must not run"),
        )
        .unwrap();
        expect_all_ok(&batch, 4);
        assert!(batch.stats.lease_expiries >= 1, "{:?}", batch.stats);
        assert!(batch.stats.reassignments >= 1, "{:?}", batch.stats);
        assert_eq!(batch.stats.rung, Rung::Remote);
    }

    #[test]
    fn heartbeats_keep_a_slow_worker_alive() {
        // Work takes 20x the lease, but heartbeats arrive well inside it.
        let slow = LoopbackWorker::new(|s| Ok(answer(s)))
            .with_work_polls(160)
            .with_heartbeat_every(4);
        let cfg = RemoteConfig::default().with_lease_polls(8);
        let batch = run_remote(vec![Box::new(slow)], &cfg, &jobs(2), None, |_| {
            panic!("local rung must not run")
        })
        .unwrap();
        expect_all_ok(&batch, 2);
        assert_eq!(batch.stats.lease_expiries, 0);
        assert_eq!(batch.stats.reassignments, 0);
        assert_eq!(batch.stats.rung, Rung::Remote);
    }

    #[test]
    fn worker_crash_mid_job_reassigns_and_completes() {
        let crash = FaultyTransport::new(
            LoopbackWorker::new(|s| Ok(answer(s))),
            NetFaultConfig::new(3).with_crash_after_jobs(1),
        );
        let healthy = LoopbackWorker::new(|s| Ok(answer(s)));
        let batch = run_remote(
            vec![Box::new(crash), Box::new(healthy)],
            &RemoteConfig::default(),
            &jobs(6),
            None,
            |_| panic!("local rung must not run"),
        )
        .unwrap();
        expect_all_ok(&batch, 6);
        assert!(batch.stats.worker_failures >= 1, "{:?}", batch.stats);
        assert!(batch.stats.reassignments >= 1, "{:?}", batch.stats);
        assert_eq!(batch.stats.rung, Rung::Remote);
        assert_eq!(batch.stats.live_workers, 1);
    }

    #[test]
    fn losing_every_worker_degrades_to_local() {
        let crash = FaultyTransport::new(
            LoopbackWorker::new(|s| Ok(answer(s))),
            NetFaultConfig::new(5).with_crash_after_jobs(2),
        );
        let batch = run_remote(
            vec![Box::new(crash)],
            &RemoteConfig::default(),
            &jobs(6),
            None,
            |job| Ok(answer(&job.spec)),
        )
        .unwrap();
        expect_all_ok(&batch, 6);
        assert_eq!(batch.stats.rung, Rung::Degraded, "{:?}", batch.stats);
        assert!(batch.stats.remote_done >= 1);
        assert!(batch.stats.local_done >= 1);
        assert_eq!(batch.stats.live_workers, 0);
    }

    #[test]
    fn remote_exec_failure_falls_back_to_the_local_rung() {
        // The remote runner rejects every spec; local computes it. This
        // is the ladder in miniature: remote attempt → typed failure →
        // local completion.
        let rejecting = LoopbackWorker::new(|_| Err("remote says no".to_owned()));
        let cfg = RemoteConfig::default().with_job_attempts(2);
        let batch = run_remote(
            vec![Box::new(rejecting)],
            &cfg,
            &jobs(3),
            None,
            |job| Ok(answer(&job.spec)),
        )
        .unwrap();
        expect_all_ok(&batch, 3);
        assert_eq!(batch.stats.rung, Rung::Local, "{:?}", batch.stats);
        assert_eq!(batch.stats.local_done, 3);
    }

    #[test]
    fn failure_on_every_rung_is_a_typed_error() {
        let rejecting = LoopbackWorker::new(|_| Err("remote says no".to_owned()));
        let batch = run_remote(
            vec![Box::new(rejecting)],
            &RemoteConfig::default().with_job_attempts(1),
            &jobs(1),
            None,
            |_| Err("local says no too".to_owned()),
        )
        .unwrap();
        let err = batch.outcomes[0].as_ref().expect_err("both rungs failed");
        assert_eq!(err.kind, FailureKind::Exec);
        assert!(err.message.contains("local says no too"), "{err}");
        assert!(err.attempts >= 2, "remote + local attempts: {err:?}");
    }

    #[test]
    fn version_mismatch_kills_the_worker_not_the_batch() {
        let mut old = LoopbackWorker::new(|s| Ok(answer(s)));
        old.advertise_version = 99;
        let batch = run_remote(
            vec![Box::new(old)],
            &RemoteConfig::default(),
            &jobs(2),
            None,
            |job| Ok(answer(&job.spec)),
        )
        .unwrap();
        expect_all_ok(&batch, 2);
        assert_eq!(batch.stats.rung, Rung::Local);
        assert_eq!(batch.stats.worker_failures, 1);
    }

    #[test]
    fn coordinator_restart_resumes_from_the_shared_cache() {
        let dir = std::env::temp_dir().join(format!(
            "maple-fleet-remote-restart-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        let js = jobs(8);

        // First coordinator dies mid-batch (poll budget models the crash).
        let first = run_remote(
            loopback_fleet(1),
            &RemoteConfig::default().with_poll_budget(6),
            &js,
            Some(&cache),
            |_| panic!("local rung must not run"),
        );
        assert!(
            matches!(first, Err(RemoteError::Aborted { .. })),
            "{first:?}"
        );
        let banked = cache.len().unwrap();
        assert!(banked >= 1, "some results landed before the crash");

        // A fresh coordinator over fresh transports finishes the batch,
        // reusing everything the dead one banked.
        let second = run_remote(
            loopback_fleet(1),
            &RemoteConfig::default(),
            &js,
            Some(&cache),
            |_| panic!("local rung must not run"),
        )
        .unwrap();
        expect_all_ok(&second, 8);
        assert_eq!(second.stats.cache_hits, banked);
        assert_eq!(second.stats.remote_done, 8 - banked);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_schedules_replay_bit_for_bit() {
        let run = |seed: u64| {
            let fleet: Vec<Box<dyn Transport>> = (0..3)
                .map(|wi| {
                    let inner = LoopbackWorker::new(|s| Ok(answer(s))).with_work_polls(2);
                    let cfg = NetFaultConfig::new(seed ^ (wi as u64) << 8)
                        .with_recv_drop(0.1)
                        .with_recv_delay(0.2, 12)
                        .with_send_drop(0.1);
                    let cfg = if wi == 0 { cfg.with_crash_after_jobs(1) } else { cfg };
                    Box::new(FaultyTransport::new(inner, cfg)) as Box<dyn Transport>
                })
                .collect();
            let batch = run_remote(
                fleet,
                &RemoteConfig::default().with_lease_polls(10),
                &jobs(9),
                None,
                |job| Ok(answer(&job.spec)),
            )
            .unwrap();
            expect_all_ok(&batch, 9);
            batch.stats
        };
        assert_eq!(run(11), run(11), "same seed, same batch history");
    }

    #[test]
    fn serve_connection_works_over_real_tcp_with_heartbeats() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let worker = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::from_stream(stream).unwrap();
            serve_connection(&mut t, Duration::from_millis(5), |spec| {
                // Slow enough that heartbeats must carry the lease.
                std::thread::sleep(Duration::from_millis(40));
                Ok(answer(spec))
            })
        });

        let t = TcpTransport::dial(&addr, 5, Duration::from_millis(10)).unwrap();
        let cfg = RemoteConfig::default()
            .with_lease_polls(10)
            .with_poll_sleep(Duration::from_millis(2));
        let batch = run_remote(vec![Box::new(t)], &cfg, &jobs(3), None, |_| {
            panic!("local rung must not run")
        })
        .unwrap();
        expect_all_ok(&batch, 3);
        assert_eq!(batch.stats.rung, Rung::Remote);
        assert_eq!(batch.stats.lease_expiries, 0, "{:?}", batch.stats);
        assert_eq!(worker.join().unwrap().unwrap(), 3, "worker served 3 jobs");
    }
}
