//! Deterministic parallel execution runtime for the MAPLE workspace.
//!
//! Every experiment in this reproduction — the figure sweeps, the
//! differential oracle grid, the chaos grid, the property suites — is an
//! embarrassingly parallel matrix of independent `System` runs. This
//! crate is the shared runtime that executes such matrices across worker
//! threads without giving up the workspace's bit-exact reproducibility:
//!
//! - [`pool`]: a work-stealing thread-pool executor over `std::thread`
//!   scoped threads. A batch of jobs returns its results **in submission
//!   order, bit-identical regardless of worker count or completion
//!   order**; a panicking job becomes a typed [`pool::JobError`] without
//!   poisoning the pool, and every job carries wall-clock and retry
//!   accounting.
//! - [`crew`]: a long-lived worker gang for *one* job stepped in many
//!   synchronized rounds — the execution substrate of the soc crate's
//!   partitioned parallel stepper. Rounds apply a pure function to
//!   share-nothing slots, so results are bit-identical at any helper
//!   count (including zero, the sequential reference).
//! - [`digest`]: an in-tree FNV-1a/splitmix64 content digest used to form
//!   cache keys from full case descriptors (workload, dataset, variant,
//!   thread count, `SocConfig` timing parameters, fault schedule, schema
//!   version).
//! - [`cache`]: a content-addressed result cache on disk, rooted under
//!   the workspace `target/` directory (honoring `CARGO_TARGET_DIR`), so
//!   editing a configuration or timing table invalidates exactly the
//!   affected entries instead of requiring a manual cache wipe. Entries
//!   carry an integrity header: truncated or bit-rotted files are
//!   evicted misses, never panics.
//! - [`net`]: the distributed fleet's wire layer — a length-prefixed
//!   frame protocol over `std::net`, a [`net::Transport`] trait with a
//!   deterministic in-process loopback worker, and a seeded
//!   [`net::FaultyTransport`] chaos wrapper (drop/delay/truncate/crash
//!   schedules) so the protocol tests without sockets.
//! - [`remote`]: the fault-tolerant coordinator/worker runtime — per-job
//!   leases with heartbeats, lease expiry → reassignment (at-least-once
//!   dispatch made exactly-once-by-construction through `Digest`-keyed
//!   dedup in the shared cache), jitter-free exponential backoff with
//!   strike budgets, and a remote → degraded → local degradation ladder
//!   that finishes any batch on the local [`pool`] when workers die.
//!
//! The crate is hermetic by design: std-only, zero dependencies (not even
//! on other workspace crates — `maple-sim` itself builds on it).
//!
//! # Determinism contract
//!
//! The pool guarantees submission-order collection; it is the *caller's*
//! side of the contract that each job is a pure function of its inputs
//! (the cycle-level simulator is deterministic by construction). Under
//! that contract, `MAPLE_JOBS=1`, `=2` and `=8` produce byte-identical
//! result vectors — asserted by `tests/fleet.rs` and by the
//! `scripts/ci.sh` determinism gate.

#![deny(missing_docs)]

pub mod cache;
pub mod crew;
pub mod digest;
pub mod net;
pub mod pool;
pub mod remote;

pub use cache::ResultCache;
pub use crew::{Conductor, Crew};
pub use digest::Digest;
pub use net::{
    FaultyTransport, LoopbackWorker, Msg, NetFaultConfig, RemoteError, TcpTransport, Transport,
};
pub use pool::{
    jobs_from_env, run_batch, Batch, BatchStats, FailureKind, FleetConfig, JobError, JobOutcome,
    JobStats,
};
pub use remote::{
    run_remote, serve_connection, RemoteBatch, RemoteConfig, RemoteJob, RemoteStats, Rung,
};
