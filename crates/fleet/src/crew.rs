//! Long-lived worker gang for barrier-stepped parallel simulation.
//!
//! [`pool`](crate::pool) runs a *batch* of independent jobs to completion;
//! a partitioned `System` run is the opposite shape — one job, stepped in
//! millions of tiny synchronized rounds. Spawning threads per round would
//! drown the work in overhead, so a [`Crew`] keeps its helpers alive for
//! the whole run: each round the hub publishes an epoch, helpers race
//! through the slots (claiming via an atomic cursor, one mutex-guarded
//! slot at a time), and the hub spins until every slot reports done.
//!
//! Determinism falls out of the structure rather than the scheduling: a
//! round applies one pure function to every slot, slots share nothing,
//! and the hub alone touches cross-slot state between rounds. Which
//! thread processes which slot — and with how many helpers — is therefore
//! unobservable. The same closure with zero helpers is the sequential
//! reference, which is how the soc crate's partitioned stepper proves
//! itself bit-exact at any worker count.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// A fixed set of work slots plus the barrier state helpers synchronize
/// on. Create with [`Crew::new`], drive rounds from inside [`Crew::run`],
/// recover the slots with [`Crew::into_slots`].
#[derive(Debug)]
pub struct Crew<T> {
    slots: Vec<Mutex<T>>,
    epoch: AtomicU64,
    cursor: AtomicUsize,
    done: AtomicUsize,
    stop: AtomicBool,
    /// First panic payload caught during a round; the hub re-raises it
    /// at the barrier instead of spinning forever on a slot that will
    /// never report done.
    fault: Mutex<Option<String>>,
}

impl<T: Send> Crew<T> {
    /// Wraps each item in its own slot.
    #[must_use]
    pub fn new(items: Vec<T>) -> Self {
        Crew {
            slots: items.into_iter().map(Mutex::new).collect(),
            epoch: AtomicU64::new(0),
            cursor: AtomicUsize::new(usize::MAX),
            done: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            fault: Mutex::new(None),
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the crew has no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Unwraps the slots back into their items, in slot order.
    ///
    /// # Panics
    ///
    /// Panics if a worker panicked while holding a slot.
    #[must_use]
    pub fn into_slots(self) -> Vec<T> {
        self.slots
            .into_iter()
            .map(|m| m.into_inner().expect("a crew worker panicked mid-round"))
            .collect()
    }

    /// Runs `hub` on the calling thread with `helpers` extra worker
    /// threads standing by; returns whatever `hub` returns. The hub
    /// drives rounds through the [`Conductor`] it receives: each
    /// [`Conductor::round`] applies `work` to every slot exactly once
    /// (hub and helpers racing through the claim cursor) and returns only
    /// when all slots are done. Between rounds the helpers spin idle and
    /// the hub may lock any slot directly via [`Conductor::slot`].
    pub fn run<R>(
        &self,
        helpers: usize,
        work: &(impl Fn(usize, &mut T) + Sync),
        hub: impl FnOnce(&Conductor<'_, T>) -> R,
    ) -> R {
        // Fresh session: clear the previous run's stop flag (set by its
        // guard) and any stale fault so helpers actually participate and
        // old panics cannot resurface. No other thread is live here.
        self.stop.store(false, Ordering::Release);
        if let Ok(mut fault) = self.fault.lock() {
            *fault = None;
        }
        std::thread::scope(|s| {
            for _ in 0..helpers {
                s.spawn(|| {
                    let mut seen = 0u64;
                    loop {
                        // Park until the hub opens a new round (or ends
                        // the run). Yield inside the spin: helpers may
                        // outnumber free host cores.
                        loop {
                            if self.stop.load(Ordering::Acquire) {
                                return;
                            }
                            let e = self.epoch.load(Ordering::Acquire);
                            if e != seen {
                                seen = e;
                                break;
                            }
                            std::hint::spin_loop();
                            std::thread::yield_now();
                        }
                        self.drain(work);
                    }
                });
            }
            // The guard sets `stop` even when `hub` unwinds: without it
            // the helpers would spin forever on a new epoch that never
            // comes and `thread::scope` would never join — a panicking
            // hub must shut the gang down, not hang it.
            struct StopGuard<'a>(&'a AtomicBool);
            impl Drop for StopGuard<'_> {
                fn drop(&mut self) {
                    self.0.store(true, Ordering::Release);
                }
            }
            let _stop_on_exit = StopGuard(&self.stop);
            hub(&Conductor { crew: self, work })
        })
    }

    /// Claims and processes slots until the cursor runs past the end.
    ///
    /// A panicking `work` closure is caught *inside* the lock scope (the
    /// guard drops normally, so the slot mutex is never poisoned), the
    /// payload is recorded for the hub to re-raise at the barrier, and
    /// `done` still advances — the barrier always completes.
    fn drain(&self, work: &impl Fn(usize, &mut T)) {
        loop {
            let i = self.cursor.fetch_add(1, Ordering::AcqRel);
            if i >= self.slots.len() {
                return;
            }
            let mut slot = self.slots[i].lock().expect("a crew worker panicked mid-round");
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| work(i, &mut slot))) {
                if let Ok(mut fault) = self.fault.lock() {
                    fault.get_or_insert_with(|| crate::pool::panic_message(&*payload));
                }
            }
            drop(slot);
            self.done.fetch_add(1, Ordering::AcqRel);
        }
    }
}

/// The hub's handle on an open [`Crew::run`] session.
///
/// A straggling helper that claims a slot just after the cursor reset
/// still performs the *new* round's work (the hub publishes all round
/// inputs before calling [`Conductor::round`]) and is counted by the same
/// `done` barrier, so late wake-ups cannot duplicate or skip a slot.
pub struct Conductor<'c, T> {
    crew: &'c Crew<T>,
    work: &'c (dyn Fn(usize, &mut T) + Sync),
}

impl<T: Send> Conductor<'_, T> {
    /// Runs one barrier round: every slot is processed by `work` exactly
    /// once; returns when the last slot completes. The calling (hub)
    /// thread participates in the drain rather than just waiting.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic any gang member caught while processing
    /// a slot this round. The barrier itself always completes first —
    /// every slot is accounted for and no mutex is poisoned — so the
    /// panic unwinds a *quiescent* gang and [`Crew::run`]'s stop guard
    /// shuts the helpers down cleanly.
    pub fn round(&self) {
        let crew = self.crew;
        // Order matters: `done` must read zero and the cursor must point
        // at slot 0 before any helper can observe the new epoch.
        crew.done.store(0, Ordering::Release);
        crew.cursor.store(0, Ordering::Release);
        crew.epoch.fetch_add(1, Ordering::AcqRel);
        crew.drain(&self.work);
        while crew.done.load(Ordering::Acquire) < crew.slots.len() {
            // Yield inside the wait: on hosts with fewer free cores than
            // threads, a helper may hold the last claim while descheduled,
            // and a pure spin would burn the hub's whole quantum.
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        let fault = crew.fault.lock().ok().and_then(|mut f| f.take());
        if let Some(message) = fault {
            panic!("crew round panicked: {message}");
        }
    }

    /// Locks slot `i` for direct hub access between rounds.
    ///
    /// # Panics
    ///
    /// Panics if a worker panicked while holding the slot.
    pub fn slot(&self, i: usize) -> MutexGuard<'_, T> {
        self.crew.slots[i].lock().expect("a crew worker panicked mid-round")
    }

    /// Number of slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.crew.len()
    }

    /// Whether the crew has no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.crew.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every worker count must produce the identical slot trajectory.
    fn run_rounds(helpers: usize, rounds: u64) -> Vec<u64> {
        let crew = Crew::new(vec![0u64; 7]);
        crew.run(
            helpers,
            &|i, slot: &mut u64| {
                // Slot-dependent, round-dependent update: any duplicated
                // or skipped application changes the result.
                *slot = slot.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i as u64 + 1);
            },
            |conductor| {
                for _ in 0..rounds {
                    conductor.round();
                }
            },
        );
        crew.into_slots()
    }

    #[test]
    fn rounds_are_worker_count_invariant() {
        let reference = run_rounds(0, 100);
        for helpers in [1, 2, 3, 8] {
            assert_eq!(run_rounds(helpers, 100), reference, "helpers={helpers}");
        }
    }

    #[test]
    fn hub_can_edit_slots_between_rounds() {
        let crew = Crew::new(vec![0u64; 3]);
        let sum = crew.run(
            2,
            &|_, slot: &mut u64| *slot += 1,
            |conductor| {
                conductor.round();
                for i in 0..conductor.len() {
                    *conductor.slot(i) += 10;
                }
                conductor.round();
                (0..conductor.len()).map(|i| *conductor.slot(i)).sum::<u64>()
            },
        );
        assert_eq!(sum, 3 * 12);
        assert_eq!(crew.into_slots(), vec![12, 12, 12]);
    }

    #[test]
    fn zero_rounds_and_immediate_return_shut_down_cleanly() {
        let crew = Crew::new(vec![(); 4]);
        let answer = crew.run(3, &|_, ()| {}, |_| 41 + 1);
        assert_eq!(answer, 42);
        assert_eq!(crew.into_slots().len(), 4);
    }

    #[test]
    fn panicking_gang_member_shuts_down_instead_of_hanging() {
        // A work closure that panics on one slot must not hang the
        // barrier or poison a mutex: the round completes, the hub
        // re-raises, the stop guard releases the helpers, and the crew
        // (slots included) remains usable afterwards.
        for helpers in [0, 1, 3] {
            let crew = Crew::new(vec![0u64; 5]);
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                crew.run(
                    helpers,
                    &|i, slot: &mut u64| {
                        assert!(i != 2, "slot two is broken");
                        *slot += 1;
                    },
                    |conductor| {
                        conductor.round();
                        conductor.round(); // never reached
                    },
                )
            }));
            let payload = result.expect_err("hub re-raises the slot panic");
            let message = crate::pool::panic_message(&*payload);
            assert!(message.contains("slot two is broken"), "helpers={helpers}: {message}");
            // No poisoned mutexes: slots are recoverable, and the healthy
            // slots did their round-1 work exactly once.
            let slots = crew.into_slots();
            assert_eq!(slots, vec![1, 1, 0, 1, 1], "helpers={helpers}");
        }
    }

    #[test]
    fn crew_is_reusable_after_a_caught_panic() {
        let crew = Crew::new(vec![0u64; 3]);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            crew.run(
                2,
                &|_, _: &mut u64| panic!("boom"),
                |conductor| conductor.round(),
            );
        }));
        assert!(caught.is_err());
        // A fresh run over the same crew works and sees no residue of
        // the old fault.
        crew.run(2, &|_, slot: &mut u64| *slot += 10, |c| c.round());
        assert_eq!(crew.into_slots(), vec![10, 10, 10]);
    }
}
