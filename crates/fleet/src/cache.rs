//! Content-addressed result cache.
//!
//! One file per entry, named by the 64-bit content key of the full case
//! descriptor (see [`crate::digest`]). Because the *key* carries all the
//! inputs — workload, dataset, variant, thread count, every `SocConfig`
//! timing parameter, the fault schedule, a schema version — there is no
//! invalidation logic at all: editing a configuration changes the keys of
//! exactly the affected cases, whose old entries simply become garbage
//! that a later [`ResultCache::clear`] can sweep. The old ad-hoc
//! per-suite TSV caches required a manual delete to pick up config
//! edits; this cache cannot serve a stale row by construction.
//!
//! Writes go through a temp file + rename so concurrent writers (e.g.
//! two fleet workers finishing the same key after a racey double miss)
//! leave a complete entry either way.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The workspace root, derived from this crate's compile-time manifest
/// directory (`crates/fleet` → two `pop`s).
#[must_use]
pub fn workspace_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

/// The default cache directory: `<target>/fleet-cache`, where `<target>`
/// honors a runtime `CARGO_TARGET_DIR` (absolute, or relative to the
/// workspace root) and otherwise falls back to the workspace `target/`.
///
/// This replaces the old hard-coded `../../target/bench-cache`, which
/// broke whenever the binary's working directory was not the crate root.
#[must_use]
pub fn default_cache_dir() -> PathBuf {
    let target = match std::env::var_os("CARGO_TARGET_DIR") {
        Some(dir) => {
            let dir = PathBuf::from(dir);
            if dir.is_absolute() {
                dir
            } else {
                workspace_root().join(dir)
            }
        }
        None => workspace_root().join("target"),
    };
    target.join("fleet-cache")
}

/// A directory of content-addressed entries: `get`/`put` by 64-bit key,
/// values are opaque strings (the bench layer stores TSV rows).
#[derive(Debug, Clone)]
pub struct ResultCache {
    root: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory cannot be
    /// created.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(ResultCache { root })
    }

    /// Opens the workspace-default cache (see [`default_cache_dir`]).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory cannot be
    /// created.
    pub fn open_default() -> io::Result<Self> {
        Self::open(default_cache_dir())
    }

    /// The cache's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.root.join(format!("{key:016x}.entry"))
    }

    /// Looks up an entry. `None` on a miss; an unreadable entry is a
    /// miss, not an error (the caller will recompute and overwrite it).
    #[must_use]
    pub fn get(&self, key: u64) -> Option<String> {
        fs::read_to_string(self.entry_path(key)).ok()
    }

    /// Stores an entry, replacing any previous value at this key.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the entry cannot be
    /// written.
    pub fn put(&self, key: u64, value: &str) -> io::Result<()> {
        let path = self.entry_path(key);
        let tmp = self.root.join(format!(
            ".{key:016x}.{}.tmp",
            std::process::id()
        ));
        fs::write(&tmp, value)?;
        fs::rename(&tmp, &path)
    }

    /// Removes one entry if present.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error (not-found is *not* an error).
    pub fn remove(&self, key: u64) -> io::Result<()> {
        match fs::remove_file(self.entry_path(key)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// Removes every entry (sweeps garbage left behind by key changes).
    ///
    /// # Errors
    ///
    /// Returns the first underlying I/O error.
    pub fn clear(&self) -> io::Result<()> {
        for dirent in fs::read_dir(&self.root)? {
            let path = dirent?.path();
            if path.extension().is_some_and(|e| e == "entry") {
                fs::remove_file(&path)?;
            }
        }
        Ok(())
    }

    /// Number of entries currently stored.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory cannot be
    /// read.
    pub fn len(&self) -> io::Result<usize> {
        let mut n = 0;
        for dirent in fs::read_dir(&self.root)? {
            if dirent?.path().extension().is_some_and(|e| e == "entry") {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Whether the cache holds no entries.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory cannot be
    /// read.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "maple-fleet-cache-test-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_and_miss() {
        let cache = ResultCache::open(scratch("rt")).unwrap();
        assert_eq!(cache.get(42), None);
        cache.put(42, "spmv\t2\t123\n").unwrap();
        assert_eq!(cache.get(42).as_deref(), Some("spmv\t2\t123\n"));
        assert_eq!(cache.get(43), None, "other keys unaffected");
        cache.remove(42).unwrap();
        assert_eq!(cache.get(42), None);
        cache.remove(42).unwrap();
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn clear_and_len() {
        let cache = ResultCache::open(scratch("clear")).unwrap();
        for k in 0..5u64 {
            cache.put(k, "x").unwrap();
        }
        assert_eq!(cache.len().unwrap(), 5);
        assert!(!cache.is_empty().unwrap());
        cache.clear().unwrap();
        assert!(cache.is_empty().unwrap());
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn default_dir_lives_under_a_target_dir() {
        let dir = default_cache_dir();
        assert_eq!(dir.file_name().unwrap(), "fleet-cache");
        let parent = dir.parent().unwrap().to_string_lossy().into_owned();
        assert!(
            parent.contains("target") || std::env::var_os("CARGO_TARGET_DIR").is_some(),
            "unexpected cache parent: {parent}"
        );
    }

    #[test]
    fn workspace_root_holds_the_workspace_manifest() {
        assert!(workspace_root().join("Cargo.toml").exists());
    }
}
