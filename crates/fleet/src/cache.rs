//! Content-addressed result cache.
//!
//! One file per entry, named by the 64-bit content key of the full case
//! descriptor (see [`crate::digest`]). Because the *key* carries all the
//! inputs — workload, dataset, variant, thread count, every `SocConfig`
//! timing parameter, the fault schedule, a schema version — there is no
//! invalidation logic at all: editing a configuration changes the keys of
//! exactly the affected cases, whose old entries simply become garbage
//! that a later [`ResultCache::clear`] can sweep. The old ad-hoc
//! per-suite TSV caches required a manual delete to pick up config
//! edits; this cache cannot serve a stale row by construction.
//!
//! Writes go through a temp file + rename so concurrent writers (e.g.
//! two fleet workers finishing the same key after a racey double miss)
//! leave a complete entry either way.
//!
//! Entries carry an integrity header (`maple-fleet-entry v2
//! len=<bytes> sum=<digest>`): a load that finds a truncated, corrupt,
//! or headerless file — a writer killed before the rename on a
//! filesystem that reordered the data flush, bit-rot, or a
//! pre-integrity-era entry — treats it as a **miss and evicts the
//! entry**, never a panic or a garbage row bubbling into a batch. The
//! caller recomputes and overwrites; a distributed fleet pooling one
//! cache directory can therefore survive any worker dying at any point
//! of a `put`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::digest::Digest;

/// Schema tag of the entry checksum digest; bumping it invalidates every
/// on-disk entry (they evict as corrupt on first touch).
const ENTRY_SCHEMA: u64 = 2;

/// Magic first header field of a well-formed entry.
const ENTRY_MAGIC: &str = "maple-fleet-entry v2";

fn entry_sum(payload: &str) -> u64 {
    Digest::new(ENTRY_SCHEMA).str(payload).finish()
}

/// The workspace root, derived from this crate's compile-time manifest
/// directory (`crates/fleet` → two `pop`s).
#[must_use]
pub fn workspace_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

/// The default cache directory: `<target>/fleet-cache`, where `<target>`
/// honors a runtime `CARGO_TARGET_DIR` (absolute, or relative to the
/// workspace root) and otherwise falls back to the workspace `target/`.
///
/// This replaces the old hard-coded `../../target/bench-cache`, which
/// broke whenever the binary's working directory was not the crate root.
#[must_use]
pub fn default_cache_dir() -> PathBuf {
    let target = match std::env::var_os("CARGO_TARGET_DIR") {
        Some(dir) => {
            let dir = PathBuf::from(dir);
            if dir.is_absolute() {
                dir
            } else {
                workspace_root().join(dir)
            }
        }
        None => workspace_root().join("target"),
    };
    target.join("fleet-cache")
}

/// A directory of content-addressed entries: `get`/`put` by 64-bit key,
/// values are opaque strings (the bench layer stores TSV rows).
#[derive(Debug, Clone)]
pub struct ResultCache {
    root: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory cannot be
    /// created.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(ResultCache { root })
    }

    /// Opens the workspace-default cache (see [`default_cache_dir`]).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory cannot be
    /// created.
    pub fn open_default() -> io::Result<Self> {
        Self::open(default_cache_dir())
    }

    /// The cache's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.root.join(format!("{key:016x}.entry"))
    }

    /// Looks up an entry. `None` on a miss; an unreadable, truncated, or
    /// corrupt entry is a miss **and is evicted** — the caller will
    /// recompute and overwrite it. Never panics and never returns a
    /// payload that fails its integrity check.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<String> {
        let path = self.entry_path(key);
        let bytes = fs::read(&path).ok()?;
        match Self::parse_entry(&bytes) {
            Some(payload) => Some(payload),
            None => {
                // Corrupt or pre-integrity entry: evict so the slot heals
                // on the next put instead of failing every lookup.
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Validates and extracts the payload of an on-disk entry; `None` on
    /// any deviation from the v2 format.
    fn parse_entry(bytes: &[u8]) -> Option<String> {
        let text = std::str::from_utf8(bytes).ok()?;
        let (header, payload) = text.split_once('\n')?;
        let rest = header.strip_prefix(ENTRY_MAGIC)?;
        let rest = rest.strip_prefix(" len=")?;
        let (len, rest) = rest.split_once(" sum=")?;
        let len: usize = len.parse().ok()?;
        let sum = u64::from_str_radix(rest, 16).ok()?;
        if payload.len() != len || entry_sum(payload) != sum {
            return None;
        }
        Some(payload.to_owned())
    }

    /// Stores an entry, replacing any previous value at this key.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the entry cannot be
    /// written.
    pub fn put(&self, key: u64, value: &str) -> io::Result<()> {
        let path = self.entry_path(key);
        let tmp = self.root.join(format!(
            ".{key:016x}.{}.tmp",
            std::process::id()
        ));
        let entry = format!(
            "{ENTRY_MAGIC} len={} sum={:016x}\n{value}",
            value.len(),
            entry_sum(value)
        );
        fs::write(&tmp, entry)?;
        fs::rename(&tmp, &path)
    }

    /// Removes one entry if present.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error (not-found is *not* an error).
    pub fn remove(&self, key: u64) -> io::Result<()> {
        match fs::remove_file(self.entry_path(key)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// Removes every entry (sweeps garbage left behind by key changes).
    ///
    /// # Errors
    ///
    /// Returns the first underlying I/O error.
    pub fn clear(&self) -> io::Result<()> {
        for dirent in fs::read_dir(&self.root)? {
            let path = dirent?.path();
            if path.extension().is_some_and(|e| e == "entry") {
                fs::remove_file(&path)?;
            }
        }
        Ok(())
    }

    /// Number of entries currently stored.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory cannot be
    /// read.
    pub fn len(&self) -> io::Result<usize> {
        let mut n = 0;
        for dirent in fs::read_dir(&self.root)? {
            if dirent?.path().extension().is_some_and(|e| e == "entry") {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Whether the cache holds no entries.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory cannot be
    /// read.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "maple-fleet-cache-test-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_and_miss() {
        let cache = ResultCache::open(scratch("rt")).unwrap();
        assert_eq!(cache.get(42), None);
        cache.put(42, "spmv\t2\t123\n").unwrap();
        assert_eq!(cache.get(42).as_deref(), Some("spmv\t2\t123\n"));
        assert_eq!(cache.get(43), None, "other keys unaffected");
        cache.remove(42).unwrap();
        assert_eq!(cache.get(42), None);
        cache.remove(42).unwrap();
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn clear_and_len() {
        let cache = ResultCache::open(scratch("clear")).unwrap();
        for k in 0..5u64 {
            cache.put(k, "x").unwrap();
        }
        assert_eq!(cache.len().unwrap(), 5);
        assert!(!cache.is_empty().unwrap());
        cache.clear().unwrap();
        assert!(cache.is_empty().unwrap());
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn corrupt_entries_are_misses_and_are_evicted() {
        let cache = ResultCache::open(scratch("corrupt")).unwrap();
        cache.put(7, "good row\n").unwrap();
        let path = cache.root().join(format!("{:016x}.entry", 7u64));

        // Truncated mid-write: drop the tail of a valid entry.
        let full = fs::read(&path).unwrap();
        for cut in [0, 1, full.len() / 2, full.len() - 1] {
            fs::write(&path, &full[..cut]).unwrap();
            assert_eq!(cache.get(7), None, "cut at {cut} must be a miss");
            assert!(!path.exists(), "cut at {cut} must be evicted");
            cache.put(7, "good row\n").unwrap(); // heals
            assert_eq!(cache.get(7).as_deref(), Some("good row\n"));
        }

        // Bit-rot: flip a payload byte under an otherwise intact header.
        let mut rotted = fs::read(&path).unwrap();
        let last = rotted.len() - 2;
        rotted[last] ^= 0x40;
        fs::write(&path, &rotted).unwrap();
        assert_eq!(cache.get(7), None, "checksum mismatch is a miss");
        assert!(!path.exists());

        // Garbage bytes (not even UTF-8), and a headerless v1-era entry.
        fs::write(&path, [0xFF, 0xFE, 0x00, 0x9C]).unwrap();
        assert_eq!(cache.get(7), None);
        assert!(!path.exists());
        fs::write(&path, "bare v1 payload with no header\n").unwrap();
        assert_eq!(cache.get(7), None, "pre-integrity entries evict as misses");
        assert!(!path.exists());

        // The slot still works after all that abuse.
        cache.put(7, "recomputed\n").unwrap();
        assert_eq!(cache.get(7).as_deref(), Some("recomputed\n"));
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn header_cannot_be_spoofed_by_payload_content() {
        // A payload that *contains* an entry header must round-trip
        // verbatim — framing is by the outer header's length field.
        let cache = ResultCache::open(scratch("spoof")).unwrap();
        let tricky = format!("{ENTRY_MAGIC} len=0 sum=0000000000000000\nrow\n");
        cache.put(9, &tricky).unwrap();
        assert_eq!(cache.get(9).as_deref(), Some(tricky.as_str()));
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn default_dir_lives_under_a_target_dir() {
        let dir = default_cache_dir();
        assert_eq!(dir.file_name().unwrap(), "fleet-cache");
        let parent = dir.parent().unwrap().to_string_lossy().into_owned();
        assert!(
            parent.contains("target") || std::env::var_os("CARGO_TARGET_DIR").is_some(),
            "unexpected cache parent: {parent}"
        );
    }

    #[test]
    fn workspace_root_holds_the_workspace_manifest() {
        assert!(workspace_root().join("Cargo.toml").exists());
    }
}
