//! The work-stealing batch executor.
//!
//! A batch of independent jobs is distributed round-robin across
//! per-worker deques; each worker pops from the front of its own deque
//! and, when empty, steals from the back of a victim's. Results are
//! written into per-job slots, so the returned vector is **always in
//! submission order** no matter which worker finished which job when —
//! the scheduling is nondeterministic, the collection is not.
//!
//! Failure isolation: each attempt runs under `catch_unwind`, so a
//! panicking job becomes a typed [`JobError`] in its own slot while every
//! other job completes normally (the pool is never poisoned). Panicked
//! jobs are retried up to [`FleetConfig::max_retries`] times — zero by
//! default, because a deterministic simulation that panicked once will
//! panic again; retries exist for callers whose jobs touch genuinely
//! transient resources.
//!
//! Nested batches collapse: a `run_batch` issued from inside a fleet
//! worker runs its jobs inline on that worker (single-threaded), so
//! composed layers — a property runner fanning out cases whose property
//! itself fans out an oracle grid — cannot multiply worker threads.

use std::cell::Cell;
use std::collections::HashSet;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::thread::ThreadId;
use std::time::Instant;

/// Worker count from the environment: `MAPLE_JOBS` when set (must be a
/// positive integer), otherwise the host's available parallelism.
///
/// # Panics
///
/// Panics when `MAPLE_JOBS` is set but does not parse as a positive
/// integer — a silently ignored job count would make "I ran it with
/// MAPLE_JOBS=8" unfalsifiable.
#[must_use]
pub fn jobs_from_env() -> usize {
    match std::env::var("MAPLE_JOBS") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!("[maple-fleet] could not parse MAPLE_JOBS={raw} as a positive integer"),
        },
        Err(_) => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    }
}

/// Executor configuration for one batch.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker threads to spawn (clamped to the job count; at least one).
    pub workers: usize,
    /// Re-executions granted to a panicking job before it is reported as
    /// a [`JobError`].
    pub max_retries: u32,
}

impl FleetConfig {
    /// The standard configuration: workers from [`jobs_from_env`], no
    /// retries.
    #[must_use]
    pub fn from_env() -> Self {
        FleetConfig {
            workers: jobs_from_env(),
            max_retries: 0,
        }
    }

    /// Overrides the worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the panic-retry budget.
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig::from_env()
    }
}

/// How a failed job failed — the pool's own panic isolation, a runner
/// that returned a typed failure, or the remote layer's error taxonomy
/// (see [`crate::net::RemoteError`]) threaded through by the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The job panicked on every granted attempt.
    Panic,
    /// The job ran to completion but reported failure (worker runner or
    /// local fallback returned `Err`).
    Exec,
    /// The distributed layer failed the job with a typed network error.
    Remote(crate::net::RemoteError),
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Panic => f.write_str("panicked"),
            FailureKind::Exec => f.write_str("failed"),
            FailureKind::Remote(e) => write!(f, "failed remotely ({e})"),
        }
    }
}

/// A job that exhausted its attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// The final failure payload, rendered.
    pub message: String,
    /// Executions performed (1 + retries granted).
    pub attempts: u32,
    /// What kind of failure ended the attempts.
    pub kind: FailureKind,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "job {} after {} attempt{}: {}",
            self.kind,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.message
        )
    }
}

/// Per-job accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobStats {
    /// Wall-clock spent executing this job (all attempts), in
    /// nanoseconds. Varies run to run; never part of the deterministic
    /// result surface.
    pub wall_nanos: u64,
    /// Executions performed (1 for a first-try success).
    pub attempts: u32,
    /// Index of the worker that ran the job (scheduling detail, varies).
    pub worker: usize,
}

/// One job's result and accounting, in submission order within
/// [`Batch::outcomes`].
#[derive(Debug)]
pub struct JobOutcome<T> {
    /// The job's return value, or the typed panic report.
    pub result: Result<T, JobError>,
    /// Wall-clock / retry / placement accounting.
    pub stats: JobStats,
}

/// Whole-batch accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchStats {
    /// Jobs submitted.
    pub jobs: usize,
    /// Workers actually used (after clamping to the job count and nested
    /// collapse).
    pub workers: usize,
    /// Batch wall-clock, submission to collection, in nanoseconds.
    pub wall_nanos: u64,
    /// Total re-executions granted to panicking jobs.
    pub retries: u64,
    /// Total attempts that ended in a panic (≥ jobs that ultimately
    /// failed; a retried-then-successful job contributes here too).
    pub panics: u64,
    /// Jobs executed by a worker other than the one they were assigned
    /// to (work-stealing traffic; scheduling detail, varies).
    pub steals: u64,
}

impl BatchStats {
    /// Batch wall-clock in seconds.
    #[must_use]
    pub fn wall_seconds(&self) -> f64 {
        self.wall_nanos as f64 / 1e9
    }
}

/// The completed batch: per-job outcomes in submission order plus the
/// aggregate accounting.
#[derive(Debug)]
pub struct Batch<T> {
    /// One outcome per submitted job, submission order.
    pub outcomes: Vec<JobOutcome<T>>,
    /// Aggregate accounting.
    pub stats: BatchStats,
}

impl<T> Batch<T> {
    /// Unwraps every job's value, submission order.
    ///
    /// # Errors
    ///
    /// Returns the first failed job's index and error.
    pub fn into_results(self) -> Result<Vec<T>, (usize, JobError)> {
        self.outcomes
            .into_iter()
            .enumerate()
            .map(|(i, o)| o.result.map_err(|e| (i, e)))
            .collect()
    }
}

thread_local! {
    /// Set while the current thread is executing fleet jobs; nested
    /// batches observe it and run inline.
    static IN_FLEET_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Runs a batch of independent jobs and collects their results in
/// submission order.
///
/// Each job must be a pure function of its captured inputs for the
/// batch-level determinism guarantee to hold (see the crate docs); the
/// pool itself guarantees submission-order collection and panic
/// isolation regardless.
pub fn run_batch<T, F>(cfg: &FleetConfig, jobs: Vec<F>) -> Batch<T>
where
    T: Send,
    F: Fn() -> T + Send,
{
    let start = Instant::now();
    let n = jobs.len();
    let nested = IN_FLEET_WORKER.with(Cell::get);
    let workers = if nested {
        1
    } else {
        cfg.workers.max(1).min(n.max(1))
    };

    let job_slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let result_slots: Vec<Mutex<Option<JobOutcome<T>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    // Round-robin assignment: job i starts on worker i % workers.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..n).step_by(workers.max(1)).collect()))
        .collect();
    let retries = AtomicU64::new(0);
    let panics = AtomicU64::new(0);
    let steals = AtomicU64::new(0);

    {
        let worker_loop = |me: usize| {
            let was_worker = IN_FLEET_WORKER.with(|f| f.replace(true));
            while let Some((idx, stolen)) = claim(&deques, me) {
                if stolen {
                    steals.fetch_add(1, Ordering::Relaxed);
                }
                let job = job_slots[idx]
                    .lock()
                    .expect("job slot lock")
                    .take()
                    .expect("job claimed twice");
                let outcome = run_one(&job, cfg.max_retries, me, &retries, &panics);
                *result_slots[idx].lock().expect("result slot lock") = Some(outcome);
            }
            IN_FLEET_WORKER.with(|f| f.set(was_worker));
        };
        if workers == 1 {
            // Inline on the current thread: nested batches and
            // single-worker runs share one code path.
            worker_loop(0);
        } else {
            let worker_loop = &worker_loop;
            std::thread::scope(|s| {
                for w in 0..workers {
                    s.spawn(move || worker_loop(w));
                }
            });
        }
    }

    let outcomes: Vec<JobOutcome<T>> = result_slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock")
                .expect("every job produced an outcome")
        })
        .collect();
    Batch {
        outcomes,
        stats: BatchStats {
            jobs: n,
            workers,
            wall_nanos: u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            retries: retries.into_inner(),
            panics: panics.into_inner(),
            steals: steals.into_inner(),
        },
    }
}

/// Claims the next job index for worker `me`: own front first, then a
/// steal from the back of the first non-empty victim. `None` when every
/// deque is empty (batch drained — jobs never spawn jobs).
fn claim(deques: &[Mutex<VecDeque<usize>>], me: usize) -> Option<(usize, bool)> {
    if let Some(idx) = deques[me].lock().expect("own deque lock").pop_front() {
        return Some((idx, false));
    }
    let w = deques.len();
    for off in 1..w {
        let victim = (me + off) % w;
        if let Some(idx) = deques[victim].lock().expect("victim deque lock").pop_back() {
            return Some((idx, true));
        }
    }
    None
}

/// Executes one job with panic isolation and the retry budget.
fn run_one<T, F>(
    job: &F,
    max_retries: u32,
    worker: usize,
    retries: &AtomicU64,
    panics: &AtomicU64,
) -> JobOutcome<T>
where
    F: Fn() -> T,
{
    let t0 = Instant::now();
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let _quiet = QuietPanics::enter();
        let attempt = panic::catch_unwind(AssertUnwindSafe(job));
        drop(_quiet);
        let stats = |attempts| JobStats {
            wall_nanos: u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
            attempts,
            worker,
        };
        match attempt {
            Ok(value) => {
                return JobOutcome {
                    result: Ok(value),
                    stats: stats(attempts),
                }
            }
            Err(payload) => {
                panics.fetch_add(1, Ordering::Relaxed);
                if attempts > max_retries {
                    return JobOutcome {
                        result: Err(JobError {
                            message: panic_message(&*payload),
                            attempts,
                            kind: FailureKind::Panic,
                        }),
                        stats: stats(attempts),
                    };
                }
                retries.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Suppresses the default panic-hook backtrace for panics raised by jobs
/// currently under `catch_unwind` in this pool — an isolated job failure
/// is a *reported value*, not console noise. Panics on unrelated threads
/// still reach the previously installed hook.
struct QuietPanics;

fn suppressed() -> &'static Mutex<HashSet<ThreadId>> {
    static SET: OnceLock<Mutex<HashSet<ThreadId>>> = OnceLock::new();
    SET.get_or_init(|| Mutex::new(HashSet::new()))
}

impl QuietPanics {
    fn enter() -> QuietPanics {
        static INSTALL: Once = Once::new();
        INSTALL.call_once(|| {
            let prev = panic::take_hook();
            panic::set_hook(Box::new(move |info| {
                let me = std::thread::current().id();
                let quiet = suppressed().lock().is_ok_and(|s| s.contains(&me));
                if !quiet {
                    prev(info);
                }
            }));
        });
        if let Ok(mut set) = suppressed().lock() {
            set.insert(std::thread::current().id());
        }
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        if let Ok(mut set) = suppressed().lock() {
            set.remove(&std::thread::current().id());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn square_batch(workers: usize, n: u64) -> Vec<u64> {
        let cfg = FleetConfig::from_env().with_workers(workers);
        let jobs: Vec<_> = (0..n).map(|i| move || i * i).collect();
        run_batch(&cfg, jobs)
            .into_results()
            .expect("no job panics")
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let expected: Vec<u64> = (0..64).map(|i| i * i).collect();
        for workers in [1, 2, 3, 8, 64, 100] {
            assert_eq!(square_batch(workers, 64), expected, "workers={workers}");
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let cfg = FleetConfig::from_env().with_workers(4);
        let batch = run_batch(&cfg, Vec::<fn() -> u8>::new());
        assert!(batch.outcomes.is_empty());
        assert_eq!(batch.stats.jobs, 0);
    }

    #[test]
    fn panicking_job_is_isolated_and_typed() {
        let cfg = FleetConfig::from_env().with_workers(4);
        let jobs: Vec<Box<dyn Fn() -> u64 + Send>> = (0u64..8)
            .map(|i| {
                Box::new(move || {
                    assert!(i != 3, "job three is broken");
                    i
                }) as Box<dyn Fn() -> u64 + Send>
            })
            .collect();
        let batch = run_batch(&cfg, jobs);
        assert_eq!(batch.outcomes.len(), 8);
        for (i, o) in batch.outcomes.iter().enumerate() {
            if i == 3 {
                let err = o.result.as_ref().expect_err("job 3 panics");
                assert!(err.message.contains("job three is broken"), "{err}");
                assert_eq!(err.attempts, 1);
            } else {
                assert_eq!(*o.result.as_ref().expect("healthy job"), i as u64);
            }
        }
        assert_eq!(batch.stats.panics, 1);
        // The pool is not poisoned: it runs another batch fine.
        assert_eq!(square_batch(4, 8), (0..8).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn retry_budget_reruns_panicking_jobs() {
        let flaky_calls = AtomicU32::new(0);
        let cfg = FleetConfig::from_env().with_workers(2).with_max_retries(2);
        let jobs: Vec<Box<dyn Fn() -> u32 + Send>> = vec![
            Box::new(|| 7),
            Box::new(|| {
                // Fails on the first attempt, succeeds on the second.
                if flaky_calls.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("transient");
                }
                9
            }),
        ];
        let batch = run_batch(&cfg, jobs);
        assert_eq!(*batch.outcomes[0].result.as_ref().unwrap(), 7);
        assert_eq!(*batch.outcomes[1].result.as_ref().unwrap(), 9);
        assert_eq!(batch.outcomes[1].stats.attempts, 2);
        assert_eq!(batch.stats.retries, 1);
        assert_eq!(batch.stats.panics, 1);
    }

    #[test]
    fn retry_exhaustion_reports_the_full_budget() {
        // A job that panics on every attempt must burn exactly
        // 1 + max_retries executions and surface that count in the
        // typed error — the accounting the FleetLine report trusts.
        let calls = AtomicU32::new(0);
        let cfg = FleetConfig::from_env().with_workers(2).with_max_retries(3);
        let jobs: Vec<Box<dyn Fn() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| {
                calls.fetch_add(1, Ordering::SeqCst);
                panic!("always broken");
            }),
        ];
        let batch = run_batch(&cfg, jobs);
        assert_eq!(*batch.outcomes[0].result.as_ref().unwrap(), 1);
        let err = batch.outcomes[1].result.as_ref().expect_err("job 1 fails");
        assert_eq!(err.attempts, 4, "1 initial + 3 retries");
        assert_eq!(err.kind, FailureKind::Panic);
        assert!(err.message.contains("always broken"), "{err}");
        assert_eq!(calls.load(Ordering::SeqCst), 4, "executed exactly 4 times");
        assert_eq!(batch.stats.retries, 3);
        assert_eq!(batch.stats.panics, 4);
        assert_eq!(batch.outcomes[1].stats.attempts, 4);
    }

    #[test]
    fn nested_batches_collapse_to_inline_execution() {
        let cfg = FleetConfig::from_env().with_workers(4);
        let jobs: Vec<_> = (0u64..4)
            .map(|i| {
                move || {
                    // Inner batch runs inline on this worker.
                    let inner_cfg = FleetConfig::from_env().with_workers(8);
                    let inner: Vec<_> = (0..4).map(|j| move || i * 10 + j).collect();
                    let inner_batch = run_batch(&inner_cfg, inner);
                    assert_eq!(inner_batch.stats.workers, 1, "nested batch collapsed");
                    inner_batch.into_results().unwrap()
                }
            })
            .collect();
        let out = run_batch(&cfg, jobs).into_results().unwrap();
        for (i, row) in out.iter().enumerate() {
            let expected: Vec<u64> = (0..4).map(|j| i as u64 * 10 + j).collect();
            assert_eq!(*row, expected);
        }
    }

    #[test]
    fn accounting_covers_every_job() {
        let batch = run_batch(
            &FleetConfig::from_env().with_workers(3),
            (0..10).map(|i| move || i).collect::<Vec<_>>(),
        );
        assert_eq!(batch.stats.jobs, 10);
        assert_eq!(batch.stats.workers, 3);
        for o in &batch.outcomes {
            assert_eq!(o.stats.attempts, 1);
            assert!(o.stats.worker < 3);
        }
    }

    #[test]
    fn workers_clamped_to_job_count() {
        let batch = run_batch(
            &FleetConfig::from_env().with_workers(64),
            vec![|| 1u8, || 2u8],
        );
        assert_eq!(batch.stats.workers, 2);
    }
}
