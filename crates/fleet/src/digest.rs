//! In-tree content digest: an FNV-1a accumulator with a splitmix64
//! finalizer.
//!
//! Cache keys must be (a) a pure function of the full case descriptor and
//! (b) stable across runs, platforms and worker counts — which rules out
//! `std::hash` (`RandomState` is seeded per process) and any derive-based
//! hashing of types we do not own. A [`Digest`] is fed explicit, typed
//! fields in a fixed order; variable-length fields are length-prefixed so
//! adjacent fields can never alias (`("ab","c")` vs `("a","bc")`).
//!
//! FNV-1a mixes each byte cheaply; the splitmix64 finalizer scrambles the
//! final state so that near-identical descriptors (e.g. a single timing
//! parameter bumped by one) land far apart in key space.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// The splitmix64 output scramble (also used by `maple-sim`'s PRNG
/// seeding); a bijection on `u64`, so it loses no key entropy.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A streaming content digest over explicitly-fed, typed fields.
///
/// ```
/// use maple_fleet::digest::Digest;
/// let mut d = Digest::new(1); // schema version 1
/// d.str("spmv").str("riscv-s").u64(2);
/// let key = d.finish();
/// assert_ne!(key, Digest::new(2).str("spmv").str("riscv-s").u64(2).finish());
/// ```
#[derive(Debug, Clone)]
pub struct Digest {
    state: u64,
}

impl Digest {
    /// Starts a digest under the given schema version. Bumping the schema
    /// invalidates every key derived under the old one.
    #[must_use]
    pub fn new(schema: u64) -> Self {
        let mut d = Digest { state: FNV_OFFSET };
        d.u64(schema);
        d
    }

    /// Feeds raw bytes (no length prefix — use [`Digest::str`] for
    /// variable-length fields).
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feeds a `u64` as eight little-endian bytes.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Feeds a `usize` (widened to `u64` so 32- and 64-bit hosts agree).
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Feeds a `bool` as one byte.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.bytes(&[u8::from(v)])
    }

    /// Feeds an `f64` by its IEEE-754 bit pattern (bit-exact, including
    /// negative zero and NaN payloads).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Feeds a string, length-prefixed so field boundaries are
    /// unambiguous.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.usize(s.len());
        self.bytes(s.as_bytes())
    }

    /// The final key: the FNV state scrambled through splitmix64.
    #[must_use]
    pub fn finish(&self) -> u64 {
        splitmix64(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic() {
        let key = |schema| Digest::new(schema).str("spmv").u64(2).f64(0.5).finish();
        assert_eq!(key(1), key(1));
        assert_ne!(key(1), key(2), "schema version participates");
    }

    #[test]
    fn length_prefix_prevents_field_aliasing() {
        let a = Digest::new(0).str("ab").str("c").finish();
        let b = Digest::new(0).str("a").str("bc").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn single_bit_field_changes_move_the_key() {
        let base = Digest::new(0).u64(300).finish();
        let bumped = Digest::new(0).u64(301).finish();
        assert_ne!(base, bumped);
        // The scramble spreads the difference across the word.
        assert!((base ^ bumped).count_ones() > 8);
    }

    #[test]
    fn splitmix_matches_reference_vector() {
        // First output of the canonical splitmix64 with seed 0.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn f64_is_bit_exact() {
        let a = Digest::new(0).f64(0.0).finish();
        let b = Digest::new(0).f64(-0.0).finish();
        assert_ne!(a, b, "negative zero is a distinct descriptor");
    }
}
