//! Wire protocol and transport layer for the distributed fleet.
//!
//! The coordinator/worker protocol is a length-prefixed frame stream
//! carrying [`Msg`] values: every frame is `MAGIC (4 LE bytes) | payload
//! length (4 LE bytes) | payload`, and every payload is a tag byte
//! followed by fixed-order little-endian fields (strings are
//! `u32`-length-prefixed). The codec is hand-rolled and std-only so the
//! workspace keeps its zero-crates.io constraint; it is versioned through
//! the [`Msg::Hello`]/[`Msg::Welcome`] handshake rather than per-frame.
//!
//! Transports implement one narrow [`Transport`] trait — a non-blocking
//! `poll` plus a `send` — with three implementations:
//!
//! - [`TcpTransport`]: real sockets over `std::net`, used by the
//!   `fleet_worker` binary and the coordinator's TCP mode.
//! - [`LoopbackWorker`]: a fully in-process, single-threaded worker whose
//!   "network" is a message queue and whose "computation time" is counted
//!   in coordinator polls. Every run over loopback transports is
//!   deterministic to the byte — counters included — which is how the
//!   whole protocol (leases, heartbeats, reassignment, degradation) runs
//!   under `cargo test` with no real sockets.
//! - [`FaultyTransport`]: a seeded chaos wrapper over any transport that
//!   drops, delays, truncates and disconnects according to a
//!   deterministic schedule — the same philosophy as the simulator's
//!   fault plane (`crates/sim/src/fault.rs`), applied to the harness
//!   network.
//!
//! Failure surfaces through the typed [`RemoteError`] taxonomy, which the
//! pool threads into [`crate::pool::JobError`] via
//! [`crate::pool::FailureKind`].

use std::collections::VecDeque;
use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::digest::splitmix64;

/// Protocol version negotiated by the Hello/Welcome handshake. Bump on
/// any change to the frame layout or message set.
pub const PROTOCOL_VERSION: u32 = 1;

/// Frame magic: rejects connections from things that are not a fleet
/// peer before any length field is trusted.
pub const FRAME_MAGIC: u32 = 0x4D41_504C; // "MAPL"

/// Upper bound on one frame's payload; a length field beyond this is a
/// protocol error, not an allocation request.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Typed failure taxonomy of the remote layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteError {
    /// Could not establish a connection (dial failure after retries).
    Connect(String),
    /// An established connection failed on read or write.
    Io(String),
    /// A frame ended before its declared length (killed peer mid-write,
    /// or chaos-plane truncation).
    Truncated {
        /// Bytes the frame declared or the decoder needed.
        wanted: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// Bytes arrived but do not parse as a protocol frame.
    Protocol(String),
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// Our [`PROTOCOL_VERSION`].
        ours: u32,
        /// The version the peer announced.
        theirs: u32,
    },
    /// The peer is gone (EOF, reset, or chaos-plane crash).
    Disconnected,
    /// A dispatched job's lease expired without a result or heartbeat.
    LeaseExpired {
        /// Dispatch id of the expired assignment.
        dispatch: u64,
    },
    /// The coordinator ran out of its poll budget and aborted the batch
    /// (the test hook that models a coordinator crash/restart).
    Aborted {
        /// Polls performed before the abort.
        polls: u64,
    },
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoteError::Connect(m) => write!(f, "connect failed: {m}"),
            RemoteError::Io(m) => write!(f, "i/o error: {m}"),
            RemoteError::Truncated { wanted, got } => {
                write!(f, "truncated frame: wanted {wanted} bytes, got {got}")
            }
            RemoteError::Protocol(m) => write!(f, "protocol error: {m}"),
            RemoteError::VersionMismatch { ours, theirs } => {
                write!(f, "version mismatch: ours v{ours}, peer v{theirs}")
            }
            RemoteError::Disconnected => write!(f, "peer disconnected"),
            RemoteError::LeaseExpired { dispatch } => {
                write!(f, "lease expired on dispatch {dispatch}")
            }
            RemoteError::Aborted { polls } => {
                write!(f, "coordinator aborted after {polls} polls")
            }
        }
    }
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Coordinator → worker: opens the session.
    Hello {
        /// Coordinator's [`PROTOCOL_VERSION`].
        version: u32,
        /// Coordinator-assigned worker index (for worker-side logs).
        worker: u64,
    },
    /// Worker → coordinator: handshake reply.
    Welcome {
        /// Worker's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Coordinator → worker: one job assignment.
    Job {
        /// Unique dispatch id (one per assignment *attempt*; a reassigned
        /// job gets a fresh id, which is how stale results are routed).
        dispatch: u64,
        /// Content key of the job (the `Digest` the shared cache uses).
        key: u64,
        /// Opaque job descriptor the worker's runner understands.
        spec: String,
    },
    /// Worker → coordinator: still alive and computing `dispatch`.
    Heartbeat {
        /// Dispatch id being worked on.
        dispatch: u64,
    },
    /// Worker → coordinator: job finished.
    Done {
        /// Dispatch id of the completed assignment.
        dispatch: u64,
        /// Content key echoed back (cache insertion needs no lookup).
        key: u64,
        /// Result payload (location-independent by the digest contract).
        payload: String,
    },
    /// Worker → coordinator: the runner reported a typed failure (the
    /// job ran and failed — distinct from the worker dying).
    Failed {
        /// Dispatch id of the failed assignment.
        dispatch: u64,
        /// The runner's error message.
        message: String,
    },
    /// Coordinator → worker: batch over, the worker may exit.
    Bye,
}

impl Msg {
    /// Encodes the message payload (tag + fields, no frame header).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(32);
        match self {
            Msg::Hello { version, worker } => {
                b.push(1);
                b.extend_from_slice(&version.to_le_bytes());
                b.extend_from_slice(&worker.to_le_bytes());
            }
            Msg::Welcome { version } => {
                b.push(2);
                b.extend_from_slice(&version.to_le_bytes());
            }
            Msg::Job { dispatch, key, spec } => {
                b.push(3);
                b.extend_from_slice(&dispatch.to_le_bytes());
                b.extend_from_slice(&key.to_le_bytes());
                put_str(&mut b, spec);
            }
            Msg::Heartbeat { dispatch } => {
                b.push(4);
                b.extend_from_slice(&dispatch.to_le_bytes());
            }
            Msg::Done { dispatch, key, payload } => {
                b.push(5);
                b.extend_from_slice(&dispatch.to_le_bytes());
                b.extend_from_slice(&key.to_le_bytes());
                put_str(&mut b, payload);
            }
            Msg::Failed { dispatch, message } => {
                b.push(6);
                b.extend_from_slice(&dispatch.to_le_bytes());
                put_str(&mut b, message);
            }
            Msg::Bye => b.push(7),
        }
        b
    }

    /// Decodes one message payload.
    ///
    /// # Errors
    ///
    /// [`RemoteError::Truncated`] when the bytes end mid-field,
    /// [`RemoteError::Protocol`] on an unknown tag, trailing garbage, or
    /// a non-UTF-8 string field.
    pub fn decode(bytes: &[u8]) -> Result<Msg, RemoteError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        let tag = r.u8()?;
        let msg = match tag {
            1 => Msg::Hello {
                version: r.u32()?,
                worker: r.u64()?,
            },
            2 => Msg::Welcome { version: r.u32()? },
            3 => Msg::Job {
                dispatch: r.u64()?,
                key: r.u64()?,
                spec: r.string()?,
            },
            4 => Msg::Heartbeat { dispatch: r.u64()? },
            5 => Msg::Done {
                dispatch: r.u64()?,
                key: r.u64()?,
                payload: r.string()?,
            },
            6 => Msg::Failed {
                dispatch: r.u64()?,
                message: r.string()?,
            },
            7 => Msg::Bye,
            t => return Err(RemoteError::Protocol(format!("unknown message tag {t}"))),
        };
        if r.pos != bytes.len() {
            return Err(RemoteError::Protocol(format!(
                "{} trailing bytes after message",
                bytes.len() - r.pos
            )));
        }
        Ok(msg)
    }
}

fn put_str(b: &mut Vec<u8>, s: &str) {
    b.extend_from_slice(&u32::try_from(s.len()).unwrap_or(u32::MAX).to_le_bytes());
    b.extend_from_slice(s.as_bytes());
}

/// Cursor over a decode buffer; every read is bounds-checked into a
/// typed [`RemoteError::Truncated`].
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], RemoteError> {
        if self.buf.len() - self.pos < n {
            return Err(RemoteError::Truncated {
                wanted: n,
                got: self.buf.len() - self.pos,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, RemoteError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, RemoteError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, RemoteError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn string(&mut self) -> Result<String, RemoteError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| RemoteError::Protocol("non-UTF-8 string field".into()))
    }
}

/// Encodes a full frame (header + payload) for `msg`.
#[must_use]
pub fn frame_bytes(msg: &Msg) -> Vec<u8> {
    let payload = msg.encode();
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&u32::try_from(payload.len()).unwrap_or(u32::MAX).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Tries to split one complete frame off the front of `buf`. Returns the
/// decoded message and consumes its bytes, or `Ok(None)` when the buffer
/// holds only a partial frame.
///
/// # Errors
///
/// [`RemoteError::Protocol`] on a bad magic or an oversized length
/// (stream unrecoverable — length-prefixed framing cannot resync), or
/// any payload decode error.
pub fn take_frame(buf: &mut Vec<u8>) -> Result<Option<Msg>, RemoteError> {
    if buf.len() < 8 {
        return Ok(None);
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
    if magic != FRAME_MAGIC {
        return Err(RemoteError::Protocol(format!(
            "bad frame magic {magic:#010x}"
        )));
    }
    let len = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(RemoteError::Protocol(format!(
            "frame length {len} exceeds limit {MAX_FRAME_LEN}"
        )));
    }
    let len = len as usize;
    if buf.len() < 8 + len {
        return Ok(None);
    }
    let msg = Msg::decode(&buf[8..8 + len])?;
    buf.drain(..8 + len);
    Ok(Some(msg))
}

/// A bidirectional message channel to one peer.
///
/// `poll` is non-blocking by contract: the coordinator multiplexes many
/// workers from one thread by polling each in turn, so a transport that
/// blocked in `poll` would stall the whole batch on its slowest peer.
pub trait Transport {
    /// Sends one message.
    ///
    /// # Errors
    ///
    /// A typed [`RemoteError`] when the peer is unreachable.
    fn send(&mut self, msg: &Msg) -> Result<(), RemoteError>;

    /// Polls for one received message; `Ok(None)` when nothing is
    /// available right now.
    ///
    /// # Errors
    ///
    /// A typed [`RemoteError`] when the connection is broken; once an
    /// error is returned the connection is considered dead.
    fn poll(&mut self) -> Result<Option<Msg>, RemoteError>;
}

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

/// [`Transport`] over a real `std::net::TcpStream`.
///
/// Reads are non-blocking and buffered (frames reassemble across
/// arbitrary segmentation); writes temporarily flip the stream back to
/// blocking so a large frame is never half-sent.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    rdbuf: Vec<u8>,
}

impl TcpTransport {
    /// Wraps an established stream (either side of the connection).
    ///
    /// # Errors
    ///
    /// [`RemoteError::Io`] when the socket cannot be configured.
    pub fn from_stream(stream: TcpStream) -> Result<Self, RemoteError> {
        stream
            .set_nodelay(true)
            .map_err(|e| RemoteError::Io(e.to_string()))?;
        stream
            .set_nonblocking(true)
            .map_err(|e| RemoteError::Io(e.to_string()))?;
        Ok(TcpTransport {
            stream,
            rdbuf: Vec::new(),
        })
    }

    /// Dials `addr`, retrying with exponential backoff: attempt `i`
    /// sleeps `base * 2^i` before retrying, up to `retries` retries.
    /// The schedule is a pure function of the arguments — no jitter — so
    /// two coordinators given the same budget behave identically.
    ///
    /// # Errors
    ///
    /// [`RemoteError::Connect`] when every attempt fails.
    pub fn dial(addr: &str, retries: u32, base: Duration) -> Result<Self, RemoteError> {
        let mut last = String::new();
        for attempt in 0..=retries {
            match TcpStream::connect(addr) {
                Ok(stream) => return Self::from_stream(stream),
                Err(e) => last = e.to_string(),
            }
            if attempt < retries {
                std::thread::sleep(base * 2u32.saturating_pow(attempt));
            }
        }
        Err(RemoteError::Connect(format!(
            "{addr}: {last} (after {} attempts)",
            retries + 1
        )))
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, msg: &Msg) -> Result<(), RemoteError> {
        let bytes = frame_bytes(msg);
        self.stream
            .set_nonblocking(false)
            .map_err(|e| RemoteError::Io(e.to_string()))?;
        let res = self.stream.write_all(&bytes).and_then(|()| self.stream.flush());
        let back = self.stream.set_nonblocking(true);
        res.map_err(|e| match e.kind() {
            std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted => RemoteError::Disconnected,
            _ => RemoteError::Io(e.to_string()),
        })?;
        back.map_err(|e| RemoteError::Io(e.to_string()))
    }

    fn poll(&mut self) -> Result<Option<Msg>, RemoteError> {
        // Drain whatever the socket has right now into the frame buffer.
        let mut chunk = [0u8; 4096];
        let mut eof = false;
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => self.rdbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionReset
                            | std::io::ErrorKind::ConnectionAborted
                    ) =>
                {
                    return Err(RemoteError::Disconnected)
                }
                Err(e) => return Err(RemoteError::Io(e.to_string())),
            }
        }
        match take_frame(&mut self.rdbuf)? {
            // Frames that landed before the close still deliver (e.g. a
            // Bye followed immediately by the peer hanging up).
            Some(msg) => Ok(Some(msg)),
            None if !eof => Ok(None),
            None if self.rdbuf.is_empty() => Err(RemoteError::Disconnected),
            // EOF mid-frame: the peer died partway through a write.
            None => Err(RemoteError::Truncated {
                wanted: 8,
                got: self.rdbuf.len(),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Loopback
// ---------------------------------------------------------------------------

/// Boxed job runner: spec string in, result payload (or error) out.
type Runner = Box<dyn Fn(&str) -> Result<String, String> + Send>;

/// Deterministic in-process worker: the coordinator-side [`Transport`]
/// *is* the worker.
///
/// Time is counted in coordinator polls, not wall-clock: a job takes
/// [`LoopbackWorker::work_polls`] polls to "compute" (the runner itself
/// executes synchronously at completion), and while computing the worker
/// emits a [`Msg::Heartbeat`] every `heartbeat_every` polls (0 = never —
/// the configuration that demonstrates lease expiry). With the defaults
/// (instant work) a `send(Job)` is answered by `Done` on the next poll.
pub struct LoopbackWorker {
    runner: Runner,
    /// Polls a job takes before its result is ready.
    pub work_polls: u64,
    /// Emit a heartbeat every this many polls while computing (0 = off).
    pub heartbeat_every: u64,
    /// Version announced in [`Msg::Welcome`] (a test knob for the
    /// mismatch path; defaults to [`PROTOCOL_VERSION`]).
    pub advertise_version: u32,
    pending: Option<PendingJob>,
    outbox: VecDeque<Msg>,
}

struct PendingJob {
    dispatch: u64,
    key: u64,
    spec: String,
    waited: u64,
}

impl fmt::Debug for LoopbackWorker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LoopbackWorker")
            .field("work_polls", &self.work_polls)
            .field("heartbeat_every", &self.heartbeat_every)
            .field("busy", &self.pending.is_some())
            .finish_non_exhaustive()
    }
}

impl LoopbackWorker {
    /// A worker that answers jobs with `runner` instantly.
    #[must_use]
    pub fn new(runner: impl Fn(&str) -> Result<String, String> + Send + 'static) -> Self {
        LoopbackWorker {
            runner: Box::new(runner),
            work_polls: 0,
            heartbeat_every: 0,
            advertise_version: PROTOCOL_VERSION,
            pending: None,
            outbox: VecDeque::new(),
        }
    }

    /// Sets the simulated computation time, in coordinator polls.
    #[must_use]
    pub fn with_work_polls(mut self, polls: u64) -> Self {
        self.work_polls = polls;
        self
    }

    /// Sets the heartbeat cadence while computing (0 = no heartbeats).
    #[must_use]
    pub fn with_heartbeat_every(mut self, polls: u64) -> Self {
        self.heartbeat_every = polls;
        self
    }
}

impl Transport for LoopbackWorker {
    fn send(&mut self, msg: &Msg) -> Result<(), RemoteError> {
        match msg {
            Msg::Hello { version, .. } => {
                if *version != PROTOCOL_VERSION {
                    return Err(RemoteError::VersionMismatch {
                        ours: PROTOCOL_VERSION,
                        theirs: *version,
                    });
                }
                self.outbox.push_back(Msg::Welcome {
                    version: self.advertise_version,
                });
            }
            Msg::Job { dispatch, key, spec } => {
                if self.pending.is_some() {
                    return Err(RemoteError::Protocol(
                        "job assigned to a busy worker".into(),
                    ));
                }
                self.pending = Some(PendingJob {
                    dispatch: *dispatch,
                    key: *key,
                    spec: spec.clone(),
                    waited: 0,
                });
            }
            Msg::Bye => {}
            other => {
                return Err(RemoteError::Protocol(format!(
                    "coordinator sent worker-only message {other:?}"
                )))
            }
        }
        Ok(())
    }

    fn poll(&mut self) -> Result<Option<Msg>, RemoteError> {
        if let Some(m) = self.outbox.pop_front() {
            return Ok(Some(m));
        }
        if let Some(p) = &mut self.pending {
            p.waited += 1;
            if p.waited > self.work_polls {
                let p = self.pending.take().expect("pending job present");
                let reply = match (self.runner)(&p.spec) {
                    Ok(payload) => Msg::Done {
                        dispatch: p.dispatch,
                        key: p.key,
                        payload,
                    },
                    Err(message) => Msg::Failed {
                        dispatch: p.dispatch,
                        message,
                    },
                };
                return Ok(Some(reply));
            }
            if self.heartbeat_every > 0 && p.waited % self.heartbeat_every == 0 {
                return Ok(Some(Msg::Heartbeat {
                    dispatch: p.dispatch,
                }));
            }
        }
        Ok(None)
    }
}

// ---------------------------------------------------------------------------
// Chaos
// ---------------------------------------------------------------------------

/// Seeded fault schedule for a [`FaultyTransport`]: what fraction of
/// traffic is dropped, delayed, or truncated, and when the peer crashes.
/// Mirrors the simulator's `FaultPlaneConfig` design — rates plus
/// scheduled events, replayable bit-for-bit from the seed.
#[derive(Debug, Clone, PartialEq)]
pub struct NetFaultConfig {
    /// Seed of the per-transport deterministic draw stream.
    pub seed: u64,
    /// Probability a coordinator→worker frame vanishes in flight.
    pub send_drop_rate: f64,
    /// Probability a worker→coordinator message vanishes in flight.
    pub recv_drop_rate: f64,
    /// Probability a worker→coordinator message is held back.
    pub recv_delay_rate: f64,
    /// Polls a delayed message is held for.
    pub recv_delay_polls: u64,
    /// Probability a worker→coordinator message arrives truncated
    /// (surfaces as [`RemoteError::Truncated`]; the stream is then dead).
    pub truncate_rate: f64,
    /// The worker accepts this many [`Msg::Job`]s, then dies *while
    /// computing the next one*: the fatal `Job` send still succeeds (the
    /// bytes land in the peer's socket buffer), but every poll after it
    /// reports [`RemoteError::Disconnected`] — the worker-crash-mid-job
    /// scenario.
    pub crash_after_jobs: Option<u64>,
}

impl NetFaultConfig {
    /// A quiescent schedule (no faults) under `seed` — the base for
    /// builder-style chaining.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        NetFaultConfig {
            seed,
            send_drop_rate: 0.0,
            recv_drop_rate: 0.0,
            recv_delay_rate: 0.0,
            recv_delay_polls: 0,
            truncate_rate: 0.0,
            crash_after_jobs: None,
        }
    }

    /// Sets the coordinator→worker drop rate.
    #[must_use]
    pub fn with_send_drop(mut self, rate: f64) -> Self {
        self.send_drop_rate = rate;
        self
    }

    /// Sets the worker→coordinator drop rate.
    #[must_use]
    pub fn with_recv_drop(mut self, rate: f64) -> Self {
        self.recv_drop_rate = rate;
        self
    }

    /// Sets the worker→coordinator delay rate and hold time.
    #[must_use]
    pub fn with_recv_delay(mut self, rate: f64, polls: u64) -> Self {
        self.recv_delay_rate = rate;
        self.recv_delay_polls = polls;
        self
    }

    /// Sets the truncation rate.
    #[must_use]
    pub fn with_truncate(mut self, rate: f64) -> Self {
        self.truncate_rate = rate;
        self
    }

    /// Schedules the worker crash after `jobs` accepted jobs.
    #[must_use]
    pub fn with_crash_after_jobs(mut self, jobs: u64) -> Self {
        self.crash_after_jobs = Some(jobs);
        self
    }
}

/// Deterministic draw stream: a splitmix64 counter keyed by the schedule
/// seed. Self-contained so `maple-fleet` keeps its zero-dependency
/// position below `maple-sim`.
#[derive(Debug, Clone)]
struct NetRng {
    seed: u64,
    ctr: u64,
}

impl NetRng {
    fn new(seed: u64) -> Self {
        NetRng { seed, ctr: 0 }
    }

    fn chance(&mut self, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        self.ctr += 1;
        let draw = splitmix64(self.seed ^ self.ctr.wrapping_mul(0xA3EC_6476_5935_9ACD));
        // 53-bit uniform in [0, 1).
        let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
        unit < rate
    }
}

/// Chaos wrapper over any [`Transport`], applying a seeded
/// [`NetFaultConfig`] schedule.
pub struct FaultyTransport {
    inner: Box<dyn Transport + Send>,
    cfg: NetFaultConfig,
    rng: NetRng,
    jobs_sent: u64,
    crashed: bool,
    polls: u64,
    /// Delayed inbound messages: `(release_at_poll, msg)`, release order
    /// is arrival order (stable).
    held: VecDeque<(u64, Msg)>,
}

impl fmt::Debug for FaultyTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyTransport")
            .field("cfg", &self.cfg)
            .field("jobs_sent", &self.jobs_sent)
            .field("crashed", &self.crashed)
            .finish_non_exhaustive()
    }
}

impl FaultyTransport {
    /// Wraps `inner` under the given schedule.
    #[must_use]
    pub fn new(inner: impl Transport + Send + 'static, cfg: NetFaultConfig) -> Self {
        let rng = NetRng::new(cfg.seed);
        FaultyTransport {
            inner: Box::new(inner),
            cfg,
            rng,
            jobs_sent: 0,
            crashed: false,
            polls: 0,
            held: VecDeque::new(),
        }
    }
}

impl Transport for FaultyTransport {
    fn send(&mut self, msg: &Msg) -> Result<(), RemoteError> {
        if self.crashed {
            return Err(RemoteError::Disconnected);
        }
        if let Msg::Job { .. } = msg {
            self.jobs_sent += 1;
            if let Some(limit) = self.cfg.crash_after_jobs {
                if self.jobs_sent > limit {
                    // The worker dies mid-job: the send itself succeeds
                    // (kernel buffers accept the bytes), but no reply
                    // will ever come and reads start failing.
                    self.crashed = true;
                    return Ok(());
                }
            }
        }
        if self.rng.chance(self.cfg.send_drop_rate) {
            return Ok(()); // vanished in flight
        }
        self.inner.send(msg)
    }

    fn poll(&mut self) -> Result<Option<Msg>, RemoteError> {
        if self.crashed {
            return Err(RemoteError::Disconnected);
        }
        self.polls += 1;
        if let Some(&(release_at, _)) = self.held.front() {
            if self.polls >= release_at {
                let (_, msg) = self.held.pop_front().expect("held front present");
                return Ok(Some(msg));
            }
        }
        match self.inner.poll()? {
            None => Ok(None),
            Some(msg) => {
                if self.rng.chance(self.cfg.recv_drop_rate) {
                    return Ok(None); // vanished in flight
                }
                if self.rng.chance(self.cfg.truncate_rate) {
                    return Err(RemoteError::Truncated { wanted: 8, got: 3 });
                }
                if self.rng.chance(self.cfg.recv_delay_rate) {
                    self.held
                        .push_back((self.polls + self.cfg.recv_delay_polls, msg));
                    return Ok(None);
                }
                Ok(Some(msg))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<Msg> {
        vec![
            Msg::Hello {
                version: PROTOCOL_VERSION,
                worker: 3,
            },
            Msg::Welcome {
                version: PROTOCOL_VERSION,
            },
            Msg::Job {
                dispatch: 42,
                key: 0xDEAD_BEEF,
                spec: "spmv\tdoall\t2".into(),
            },
            Msg::Heartbeat { dispatch: 42 },
            Msg::Done {
                dispatch: 42,
                key: 0xDEAD_BEEF,
                payload: "cycles=123\tloads=5".into(),
            },
            Msg::Failed {
                dispatch: 7,
                message: "verification failed".into(),
            },
            Msg::Bye,
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in all_messages() {
            let bytes = msg.encode();
            assert_eq!(Msg::decode(&bytes).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn truncated_payload_is_a_typed_error() {
        for msg in all_messages() {
            let bytes = msg.encode();
            for cut in 1..bytes.len() {
                match Msg::decode(&bytes[..cut]) {
                    Err(RemoteError::Truncated { .. } | RemoteError::Protocol(_)) => {}
                    other => panic!("cut {cut} of {msg:?}: unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Msg::Bye.encode();
        bytes.push(0);
        assert!(matches!(
            Msg::decode(&bytes),
            Err(RemoteError::Protocol(_))
        ));
    }

    #[test]
    fn frames_reassemble_across_arbitrary_segmentation() {
        let msgs = all_messages();
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&frame_bytes(m));
        }
        // Feed the stream 3 bytes at a time; every frame must pop out
        // exactly once, in order.
        let mut buf = Vec::new();
        let mut got = Vec::new();
        for chunk in stream.chunks(3) {
            buf.extend_from_slice(chunk);
            while let Some(m) = take_frame(&mut buf).unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, msgs);
        assert!(buf.is_empty());
    }

    #[test]
    fn bad_magic_and_oversized_length_are_protocol_errors() {
        let mut buf = vec![0xFFu8; 16];
        assert!(matches!(
            take_frame(&mut buf),
            Err(RemoteError::Protocol(_))
        ));
        let mut buf = Vec::new();
        buf.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert!(matches!(
            take_frame(&mut buf),
            Err(RemoteError::Protocol(_))
        ));
    }

    #[test]
    fn loopback_worker_answers_jobs() {
        let mut w = LoopbackWorker::new(|spec| Ok(format!("ran:{spec}")));
        w.send(&Msg::Hello {
            version: PROTOCOL_VERSION,
            worker: 0,
        })
        .unwrap();
        assert_eq!(
            w.poll().unwrap(),
            Some(Msg::Welcome {
                version: PROTOCOL_VERSION
            })
        );
        w.send(&Msg::Job {
            dispatch: 9,
            key: 5,
            spec: "abc".into(),
        })
        .unwrap();
        assert_eq!(
            w.poll().unwrap(),
            Some(Msg::Done {
                dispatch: 9,
                key: 5,
                payload: "ran:abc".into()
            })
        );
        assert_eq!(w.poll().unwrap(), None);
    }

    #[test]
    fn loopback_worker_heartbeats_while_computing() {
        let mut w = LoopbackWorker::new(|_| Ok("done".into()))
            .with_work_polls(5)
            .with_heartbeat_every(2);
        w.send(&Msg::Job {
            dispatch: 1,
            key: 0,
            spec: String::new(),
        })
        .unwrap();
        let mut beats = 0;
        loop {
            match w.poll().unwrap() {
                Some(Msg::Heartbeat { dispatch: 1 }) => beats += 1,
                Some(Msg::Done { .. }) => break,
                Some(other) => panic!("unexpected {other:?}"),
                None => {}
            }
        }
        assert_eq!(beats, 2, "heartbeats at waited=2 and waited=4");
    }

    #[test]
    fn faulty_transport_crash_is_permanent_and_mid_job() {
        let inner = LoopbackWorker::new(|_| Ok("ok".into()));
        let mut t = FaultyTransport::new(inner, NetFaultConfig::new(1).with_crash_after_jobs(1));
        t.send(&Msg::Job {
            dispatch: 1,
            key: 1,
            spec: String::new(),
        })
        .unwrap();
        assert!(matches!(t.poll(), Ok(Some(Msg::Done { dispatch: 1, .. }))));
        // Second job: the send "succeeds" but the worker is now dead.
        t.send(&Msg::Job {
            dispatch: 2,
            key: 2,
            spec: String::new(),
        })
        .unwrap();
        assert_eq!(t.poll(), Err(RemoteError::Disconnected));
        assert_eq!(t.poll(), Err(RemoteError::Disconnected));
        assert_eq!(
            t.send(&Msg::Bye),
            Err(RemoteError::Disconnected),
            "sends fail after the crash surfaces"
        );
    }

    #[test]
    fn faulty_schedules_replay_bit_for_bit() {
        let run = |seed: u64| {
            let inner = LoopbackWorker::new(|s| Ok(s.to_owned()));
            let mut t = FaultyTransport::new(
                inner,
                NetFaultConfig::new(seed)
                    .with_recv_drop(0.3)
                    .with_recv_delay(0.3, 2),
            );
            let mut log = Vec::new();
            for i in 0..32u64 {
                t.send(&Msg::Job {
                    dispatch: i,
                    key: i,
                    spec: format!("{i}"),
                })
                .unwrap();
                for _ in 0..4 {
                    log.push(format!("{:?}", t.poll()));
                }
            }
            log
        };
        assert_eq!(run(7), run(7), "same seed, same schedule");
        assert_ne!(run(7), run(8), "different seed, different schedule");
    }

    #[test]
    fn tcp_transport_round_trips_over_a_real_socket() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::from_stream(stream).unwrap();
            // Blocking-ish poll loop on the server side.
            loop {
                match t.poll() {
                    Ok(Some(Msg::Job { dispatch, key, spec })) => {
                        t.send(&Msg::Done {
                            dispatch,
                            key,
                            payload: format!("echo:{spec}"),
                        })
                        .unwrap();
                    }
                    Ok(Some(Msg::Bye)) => return,
                    Ok(Some(other)) => panic!("unexpected {other:?}"),
                    Ok(None) => std::thread::sleep(Duration::from_millis(1)),
                    Err(RemoteError::Disconnected) => return,
                    Err(e) => panic!("server: {e}"),
                }
            }
        });
        let mut t = TcpTransport::dial(&addr.to_string(), 3, Duration::from_millis(10)).unwrap();
        for i in 0..5u64 {
            t.send(&Msg::Job {
                dispatch: i,
                key: i * 2,
                spec: format!("job{i}"),
            })
            .unwrap();
            let reply = loop {
                match t.poll().unwrap() {
                    Some(m) => break m,
                    None => std::thread::sleep(Duration::from_millis(1)),
                }
            };
            assert_eq!(
                reply,
                Msg::Done {
                    dispatch: i,
                    key: i * 2,
                    payload: format!("echo:job{i}")
                }
            );
        }
        t.send(&Msg::Bye).unwrap();
        server.join().unwrap();
    }

    #[test]
    fn dial_failure_is_a_typed_connect_error() {
        // Bind-then-drop gives a port that is very likely closed.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        match TcpTransport::dial(&addr, 1, Duration::from_millis(1)) {
            Err(RemoteError::Connect(m)) => assert!(m.contains(&addr), "{m}"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
