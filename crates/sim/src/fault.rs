//! Deterministic, seeded fault injection ("chaos plane").
//!
//! A [`FaultPlaneConfig`] describes *what* can go wrong and how often; the
//! timing models own per-site [`FaultSchedule`]s derived from it. Every
//! schedule carries its own [`SimRng`] stream, seeded from the plane seed
//! xor a per-site salt, so
//!
//! - a chaos run replays bit-for-bit from one `u64` seed, and
//! - draws at one site never perturb another site's schedule.
//!
//! The plane is strictly opt-in: components hold an `Option` of their
//! schedule and a fault-free run performs no RNG draws and no timing
//! perturbation at all (zero-cost when off).
//!
//! Sites modelled here:
//!
//! | site            | effect                                              |
//! |-----------------|-----------------------------------------------------|
//! | NoC drop        | an injected packet vanishes in the network          |
//! | NoC delay       | an injected packet is held for extra cycles         |
//! | DRAM spike      | one DRAM access takes `spike_cycles` longer         |
//! | MMIO ack loss   | an engine response/ack is dropped at the source     |
//! | engine RESET    | a scheduled mid-run `RESET` of a MAPLE instance     |
//! | TLB shootdown   | a randomly-timed shootdown of an engine TLB entry   |
//!
//! Recovery knobs (watchdog timeout / bounded retries with exponential
//! backoff) live in [`WatchdogConfig`] and are shared by the engine's
//! memory-fetch watchdog and the uncore's core-MMIO watchdog.

use crate::rng::SimRng;
use crate::stats::Counter;
use crate::Cycle;

/// Per-site seed salts (arbitrary odd constants; xor-ed into the plane
/// seed so each site gets an independent deterministic stream).
const SALT_NOC_DROP: u64 = 0x9E37_79B9_7F4A_7C15;
const SALT_NOC_DELAY: u64 = 0xBF58_476D_1CE4_E5B9;
const SALT_DRAM: u64 = 0x94D0_49BB_1331_11EB;
const SALT_ACK: u64 = 0xD6E8_FEB8_6659_FD93;
const SALT_SHOOTDOWN: u64 = 0xA076_1D64_78BD_642F;
const SALT_XBAR_DROP: u64 = 0xC2B2_AE3D_27D4_EB4F;
const SALT_XBAR_DELAY: u64 = 0x1656_67B1_9E37_79F9;
/// Per-bank DRAM streams for banks > 0; bank 0 keeps the historical
/// [`SALT_DRAM`] stream so single-bank configs replay unchanged.
const SALT_DRAM_BANK: u64 = 0x2545_F491_4F6C_DD1D;

/// Watchdog / retry policy for one class of transactions.
///
/// A transaction that has been outstanding longer than
/// `timeout << retries_so_far` cycles (exponential backoff) is re-issued;
/// after `max_retries` re-issues the transaction is declared poisoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Base timeout before the first re-issue, in cycles. Must comfortably
    /// exceed the worst-case legitimate round trip (DRAM + NoC + queueing).
    pub timeout: u64,
    /// Bounded number of re-issues before the transaction is poisoned.
    pub max_retries: u32,
}

impl WatchdogConfig {
    /// Deadline for a transaction issued at `issued` that has already been
    /// retried `retries` times (exponential backoff, saturating).
    #[must_use]
    pub fn deadline(&self, issued: Cycle, retries: u32) -> Cycle {
        let shift = retries.min(16);
        issued.plus(self.timeout.saturating_mul(1u64 << shift))
    }
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            timeout: 20_000,
            max_retries: 3,
        }
    }
}

/// Complete description of a chaos run: one seed plus per-site rates and
/// scheduled events. Everything a run needs to replay bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlaneConfig {
    /// Master seed; each site derives its own stream from it.
    pub seed: u64,
    /// Probability that a fault-eligible NoC packet is dropped.
    pub noc_drop_rate: f64,
    /// Probability that a fault-eligible NoC packet is delayed.
    pub noc_delay_rate: f64,
    /// Extra cycles added to a delayed NoC packet.
    pub noc_delay_cycles: u64,
    /// Probability that a DRAM access suffers a latency spike.
    pub dram_spike_rate: f64,
    /// Extra cycles added to a spiked DRAM access.
    pub dram_spike_cycles: u64,
    /// Probability that an engine response (data or ack) is lost at the
    /// source. `1.0` makes every MAPLE transaction unrecoverable.
    pub mmio_ack_loss: f64,
    /// Probability that a fault-eligible packet is dropped at its
    /// cluster crossbar (clustered fabrics only; flat meshes have no
    /// crossbar site).
    pub xbar_drop_rate: f64,
    /// Probability that a fault-eligible packet is delayed at its
    /// cluster crossbar.
    pub xbar_delay_rate: f64,
    /// Extra cycles added to a crossbar-delayed packet.
    pub xbar_delay_cycles: u64,
    /// Scheduled mid-run engine `RESET`s: `(cycle, engine index)`.
    pub engine_resets: Vec<(u64, usize)>,
    /// Number of randomly-timed engine TLB shootdowns to inject.
    pub tlb_shootdowns: u32,
    /// Window `[0, shootdown_window)` the shootdown times are drawn from.
    pub shootdown_window: u64,
    /// Watchdog policy for engine memory fetches.
    pub engine_watchdog: WatchdogConfig,
    /// Watchdog policy for core-issued MMIO transactions.
    pub mmio_watchdog: WatchdogConfig,
}

impl FaultPlaneConfig {
    /// A quiescent plane: no faults, default watchdogs. Useful as a base
    /// for builder-style chaining and as the "plane on, rates zero"
    /// zero-perturbation check.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlaneConfig {
            seed,
            noc_drop_rate: 0.0,
            noc_delay_rate: 0.0,
            noc_delay_cycles: 0,
            dram_spike_rate: 0.0,
            dram_spike_cycles: 0,
            mmio_ack_loss: 0.0,
            xbar_drop_rate: 0.0,
            xbar_delay_rate: 0.0,
            xbar_delay_cycles: 0,
            engine_resets: Vec::new(),
            tlb_shootdowns: 0,
            shootdown_window: 0,
            engine_watchdog: WatchdogConfig {
                timeout: 4_000,
                max_retries: 3,
            },
            mmio_watchdog: WatchdogConfig::default(),
        }
    }

    /// Drops fault-eligible NoC packets with probability `rate`.
    #[must_use]
    pub fn with_noc_drop(mut self, rate: f64) -> Self {
        self.noc_drop_rate = rate;
        self
    }

    /// Delays fault-eligible NoC packets by `cycles` with probability
    /// `rate`.
    #[must_use]
    pub fn with_noc_delay(mut self, rate: f64, cycles: u64) -> Self {
        self.noc_delay_rate = rate;
        self.noc_delay_cycles = cycles;
        self
    }

    /// Adds `cycles` to DRAM accesses with probability `rate`.
    #[must_use]
    pub fn with_dram_spikes(mut self, rate: f64, cycles: u64) -> Self {
        self.dram_spike_rate = rate;
        self.dram_spike_cycles = cycles;
        self
    }

    /// Loses engine responses/acks with probability `rate`.
    #[must_use]
    pub fn with_mmio_ack_loss(mut self, rate: f64) -> Self {
        self.mmio_ack_loss = rate;
        self
    }

    /// Drops fault-eligible packets at their cluster crossbar with
    /// probability `rate` (no effect on flat fabrics).
    #[must_use]
    pub fn with_xbar_drop(mut self, rate: f64) -> Self {
        self.xbar_drop_rate = rate;
        self
    }

    /// Delays fault-eligible packets by `cycles` at their cluster
    /// crossbar with probability `rate` (no effect on flat fabrics).
    #[must_use]
    pub fn with_xbar_delay(mut self, rate: f64, cycles: u64) -> Self {
        self.xbar_delay_rate = rate;
        self.xbar_delay_cycles = cycles;
        self
    }

    /// Schedules a `RESET` of engine `engine` at `cycle`.
    #[must_use]
    pub fn with_engine_reset_at(mut self, cycle: u64, engine: usize) -> Self {
        self.engine_resets.push((cycle, engine));
        self
    }

    /// Injects `count` engine TLB shootdowns at random cycles in
    /// `[0, window)`.
    #[must_use]
    pub fn with_tlb_shootdowns(mut self, count: u32, window: u64) -> Self {
        self.tlb_shootdowns = count;
        self.shootdown_window = window;
        self
    }

    /// Overrides both watchdog policies.
    #[must_use]
    pub fn with_watchdogs(mut self, engine: WatchdogConfig, mmio: WatchdogConfig) -> Self {
        self.engine_watchdog = engine;
        self.mmio_watchdog = mmio;
        self
    }

    /// Feeds every field of the plane into a content digest, in
    /// declaration order. Part of the fleet cache key: two plane configs
    /// digest equal iff a chaos run under them is bit-identical.
    pub fn digest_into(&self, d: &mut maple_fleet::Digest) {
        d.u64(self.seed)
            .f64(self.noc_drop_rate)
            .f64(self.noc_delay_rate)
            .u64(self.noc_delay_cycles)
            .f64(self.dram_spike_rate)
            .u64(self.dram_spike_cycles)
            .f64(self.mmio_ack_loss)
            .f64(self.xbar_drop_rate)
            .f64(self.xbar_delay_rate)
            .u64(self.xbar_delay_cycles);
        d.usize(self.engine_resets.len());
        for &(cycle, engine) in &self.engine_resets {
            d.u64(cycle).usize(engine);
        }
        d.u64(u64::from(self.tlb_shootdowns))
            .u64(self.shootdown_window)
            .u64(self.engine_watchdog.timeout)
            .u64(u64::from(self.engine_watchdog.max_retries))
            .u64(self.mmio_watchdog.timeout)
            .u64(u64::from(self.mmio_watchdog.max_retries));
    }

    /// The NoC packet-drop schedule for this plane.
    #[must_use]
    pub fn noc_drop_schedule(&self) -> FaultSchedule {
        FaultSchedule::new(self.noc_drop_rate, 0, self.seed ^ SALT_NOC_DROP)
    }

    /// The NoC extra-delay schedule for this plane.
    #[must_use]
    pub fn noc_delay_schedule(&self) -> FaultSchedule {
        FaultSchedule::new(
            self.noc_delay_rate,
            self.noc_delay_cycles,
            self.seed ^ SALT_NOC_DELAY,
        )
    }

    /// The DRAM latency-spike schedule for this plane.
    #[must_use]
    pub fn dram_schedule(&self) -> FaultSchedule {
        FaultSchedule::new(
            self.dram_spike_rate,
            self.dram_spike_cycles,
            self.seed ^ SALT_DRAM,
        )
    }

    /// The crossbar packet-drop schedule for this plane (clustered
    /// fabrics only; flat meshes never construct it, so existing chaos
    /// streams replay unchanged).
    #[must_use]
    pub fn xbar_drop_schedule(&self) -> FaultSchedule {
        FaultSchedule::new(self.xbar_drop_rate, 0, self.seed ^ SALT_XBAR_DROP)
    }

    /// The crossbar extra-delay schedule for this plane.
    #[must_use]
    pub fn xbar_delay_schedule(&self) -> FaultSchedule {
        FaultSchedule::new(
            self.xbar_delay_rate,
            self.xbar_delay_cycles,
            self.seed ^ SALT_XBAR_DELAY,
        )
    }

    /// The DRAM latency-spike schedule for L2 bank `bank`. Bank 0 *is*
    /// the historical [`FaultPlaneConfig::dram_schedule`] stream, so a
    /// single-bank (flat) memory system replays bit-for-bit; higher
    /// banks get independent salted streams.
    #[must_use]
    pub fn dram_bank_schedule(&self, bank: usize) -> FaultSchedule {
        if bank == 0 {
            return self.dram_schedule();
        }
        FaultSchedule::new(
            self.dram_spike_rate,
            self.dram_spike_cycles,
            self.seed ^ SALT_DRAM ^ (bank as u64).wrapping_mul(SALT_DRAM_BANK),
        )
    }

    /// The MMIO ack-loss schedule for engine `site`. Each engine gets an
    /// independent stream so strikes stay uncorrelated across instances.
    #[must_use]
    pub fn ack_loss_schedule(&self, site: u64) -> FaultSchedule {
        FaultSchedule::new(
            self.mmio_ack_loss,
            0,
            self.seed ^ SALT_ACK ^ site.wrapping_mul(0xFF51_AFD7_ED55_8CCD),
        )
    }

    /// Draws the shootdown event times (sorted, deterministic in the
    /// seed). The second element of the returned pairs is a raw random
    /// word the injector maps onto a target page.
    #[must_use]
    pub fn shootdown_events(&self) -> Vec<(u64, u64)> {
        let mut rng = SimRng::seed(self.seed ^ SALT_SHOOTDOWN);
        let mut events: Vec<(u64, u64)> = (0..self.tlb_shootdowns)
            .map(|_| {
                let at = if self.shootdown_window == 0 {
                    0
                } else {
                    rng.below(self.shootdown_window)
                };
                (at, rng.next_u64())
            })
            .collect();
        events.sort_unstable();
        events
    }
}

/// A single fault site's schedule: a Bernoulli strike rate, a magnitude
/// (extra cycles, where applicable) and a private RNG stream.
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    rate: f64,
    magnitude: u64,
    rng: SimRng,
    /// How many times this site struck.
    pub struck: Counter,
}

impl FaultSchedule {
    /// A schedule striking with probability `rate`; `magnitude` is the
    /// site-specific effect size (e.g. extra cycles).
    #[must_use]
    pub fn new(rate: f64, magnitude: u64, seed: u64) -> Self {
        FaultSchedule {
            rate,
            magnitude,
            rng: SimRng::seed(seed),
            struck: Counter::new(),
        }
    }

    /// Draws the next event: `true` when the fault strikes. A zero rate
    /// never strikes and never consumes randomness, so a rate-zero
    /// schedule is observationally identical to no schedule at all.
    pub fn strike(&mut self) -> bool {
        if self.rate <= 0.0 {
            return false;
        }
        if self.rng.chance(self.rate) {
            self.struck.inc();
            true
        } else {
            false
        }
    }

    /// The effect magnitude (extra cycles) of this site.
    #[must_use]
    pub fn magnitude(&self) -> u64 {
        self.magnitude
    }
}

/// Why a core was not making progress when a hang was diagnosed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreHang {
    /// Core index.
    pub core: usize,
    /// Coarse core state at diagnosis time (`"running"`, `"waiting-mem"`,
    /// `"halted"`, `"faulted"`).
    pub state: &'static str,
    /// Unacknowledged MMIO stores still outstanding.
    pub mmio_unacked: usize,
}

/// One engine's outstanding work when a hang was diagnosed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineHang {
    /// Engine index.
    pub engine: usize,
    /// Current occupancy of each hardware queue.
    pub queue_occupancy: Vec<usize>,
    /// Outstanding memory fetches (requests with no response yet).
    pub outstanding_fetches: usize,
    /// Buffered produce operations not yet accepted into a queue.
    pub pending_produces: usize,
    /// Buffered consume operations not yet satisfied.
    pub pending_consumes: usize,
    /// Whether the engine was marked poisoned (retries exhausted).
    pub poisoned: bool,
}

/// Structured snapshot of why a run stopped making progress: taken when a
/// cycle budget expires or when an engine is poisoned, instead of a bare
/// timeout.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HangDiagnosis {
    /// Cycle at which the diagnosis was taken.
    pub at: Cycle,
    /// Per-core stall reasons.
    pub cores: Vec<CoreHang>,
    /// Per-engine outstanding state.
    pub engines: Vec<EngineHang>,
}

impl HangDiagnosis {
    /// Whether any engine in the snapshot was poisoned.
    #[must_use]
    pub fn any_poisoned(&self) -> bool {
        self.engines.iter().any(|e| e.poisoned)
    }
}

impl std::fmt::Display for HangDiagnosis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "hang diagnosis at {}", self.at)?;
        for c in &self.cores {
            writeln!(
                f,
                "  core {}: {} ({} unacked MMIO stores)",
                c.core, c.state, c.mmio_unacked
            )?;
        }
        for e in &self.engines {
            writeln!(
                f,
                "  maple {}: queues {:?}, {} outstanding fetches, {} pending produces, {} pending consumes{}",
                e.engine,
                e.queue_occupancy,
                e.outstanding_fetches,
                e.pending_produces,
                e.pending_consumes,
                if e.poisoned { ", POISONED" } else { "" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_replay_from_one_seed() {
        let cfg = FaultPlaneConfig::new(42)
            .with_noc_drop(0.25)
            .with_noc_delay(0.5, 100)
            .with_dram_spikes(0.1, 400)
            .with_mmio_ack_loss(0.05)
            .with_tlb_shootdowns(8, 1_000_000);
        let mut a = cfg.noc_drop_schedule();
        let mut b = cfg.noc_drop_schedule();
        let seq_a: Vec<bool> = (0..256).map(|_| a.strike()).collect();
        let seq_b: Vec<bool> = (0..256).map(|_| b.strike()).collect();
        assert_eq!(seq_a, seq_b, "same seed, same strikes");
        assert_eq!(a.struck.get(), b.struck.get());
        assert!(a.struck.get() > 0, "25% over 256 draws must strike");

        assert_eq!(cfg.shootdown_events(), cfg.shootdown_events());
        assert_eq!(cfg.shootdown_events().len(), 8);
        assert!(cfg.shootdown_events().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sites_are_independent_streams() {
        let cfg = FaultPlaneConfig::new(7)
            .with_noc_drop(0.5)
            .with_noc_delay(0.5, 10);
        let mut drop = cfg.noc_drop_schedule();
        let mut delay = cfg.noc_delay_schedule();
        let a: Vec<bool> = (0..64).map(|_| drop.strike()).collect();
        let b: Vec<bool> = (0..64).map(|_| delay.strike()).collect();
        assert_ne!(a, b, "per-site salts give distinct streams");
    }

    #[test]
    fn zero_rate_never_strikes_or_draws() {
        let mut s = FaultSchedule::new(0.0, 99, 1);
        let pristine = s.rng.clone();
        for _ in 0..100 {
            assert!(!s.strike());
        }
        assert_eq!(s.rng, pristine, "zero-rate schedule must not draw");
        assert_eq!(s.struck.get(), 0);
    }

    #[test]
    fn digest_covers_every_fault_knob() {
        let key = |cfg: &FaultPlaneConfig| {
            let mut d = maple_fleet::Digest::new(0);
            cfg.digest_into(&mut d);
            d.finish()
        };
        let base = FaultPlaneConfig::new(42);
        assert_eq!(key(&base), key(&base.clone()), "digest is deterministic");
        let edits: Vec<FaultPlaneConfig> = vec![
            FaultPlaneConfig::new(43),
            base.clone().with_noc_drop(0.1),
            base.clone().with_noc_delay(0.1, 10),
            base.clone().with_dram_spikes(0.1, 10),
            base.clone().with_mmio_ack_loss(0.1),
            base.clone().with_xbar_drop(0.1),
            base.clone().with_xbar_delay(0.1, 10),
            base.clone().with_engine_reset_at(100, 0),
            base.clone().with_tlb_shootdowns(1, 100),
            base.clone().with_watchdogs(
                WatchdogConfig {
                    timeout: 1,
                    max_retries: 1,
                },
                WatchdogConfig::default(),
            ),
        ];
        for (i, edited) in edits.iter().enumerate() {
            assert_ne!(key(&base), key(edited), "edit {i} must move the key");
        }
    }

    #[test]
    fn dram_bank_zero_is_the_historical_stream() {
        let cfg = FaultPlaneConfig::new(11).with_dram_spikes(0.5, 300);
        let mut flat = cfg.dram_schedule();
        let mut bank0 = cfg.dram_bank_schedule(0);
        let a: Vec<bool> = (0..128).map(|_| flat.strike()).collect();
        let b: Vec<bool> = (0..128).map(|_| bank0.strike()).collect();
        assert_eq!(a, b, "bank 0 must replay the single-bank stream");

        let mut bank1 = cfg.dram_bank_schedule(1);
        let mut bank2 = cfg.dram_bank_schedule(2);
        let c: Vec<bool> = (0..128).map(|_| bank1.strike()).collect();
        let d: Vec<bool> = (0..128).map(|_| bank2.strike()).collect();
        assert_ne!(a, c, "bank 1 gets its own stream");
        assert_ne!(c, d, "banks are pairwise independent");
    }

    #[test]
    fn xbar_sites_are_independent_of_noc_sites() {
        let cfg = FaultPlaneConfig::new(7)
            .with_noc_drop(0.5)
            .with_xbar_drop(0.5)
            .with_xbar_delay(0.5, 10);
        let mut noc = cfg.noc_drop_schedule();
        let mut xd = cfg.xbar_drop_schedule();
        let mut xl = cfg.xbar_delay_schedule();
        let a: Vec<bool> = (0..64).map(|_| noc.strike()).collect();
        let b: Vec<bool> = (0..64).map(|_| xd.strike()).collect();
        let c: Vec<bool> = (0..64).map(|_| xl.strike()).collect();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(xl.magnitude(), 10);
    }

    #[test]
    fn watchdog_backoff_is_exponential_and_saturating() {
        let w = WatchdogConfig {
            timeout: 100,
            max_retries: 3,
        };
        assert_eq!(w.deadline(Cycle(0), 0), Cycle(100));
        assert_eq!(w.deadline(Cycle(50), 1), Cycle(250));
        assert_eq!(w.deadline(Cycle(0), 2), Cycle(400));
        assert_eq!(w.deadline(Cycle(u64::MAX), 40), Cycle(u64::MAX));
    }

    #[test]
    fn hang_diagnosis_formats_and_reports_poison() {
        let d = HangDiagnosis {
            at: Cycle(123),
            cores: vec![CoreHang {
                core: 0,
                state: "waiting-mem",
                mmio_unacked: 2,
            }],
            engines: vec![EngineHang {
                engine: 0,
                queue_occupancy: vec![3, 0],
                outstanding_fetches: 1,
                pending_produces: 0,
                pending_consumes: 4,
                poisoned: true,
            }],
        };
        assert!(d.any_poisoned());
        let text = d.to_string();
        assert!(text.contains("cycle 123"));
        assert!(text.contains("POISONED"));
        assert!(text.contains("waiting-mem"));
    }
}
