//! Deterministic random-number generation for reproducible experiments.
//!
//! Every workload generator and randomized test in the workspace draws from
//! [`SimRng`], which is seeded explicitly so a given experiment configuration
//! always produces the identical instruction stream and dataset.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A small, fast, deterministic RNG wrapper.
///
/// # Example
///
/// ```
/// use maple_sim::rng::SimRng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng(SmallRng);

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    #[must_use]
    pub fn seed(seed: u64) -> Self {
        SimRng(SmallRng::seed_from_u64(seed))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0.gen()
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        self.0.gen_range(0..bound)
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range() requires lo < hi");
        self.0.gen_range(lo..hi)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen::<f64>()
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.0.gen::<f64>() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.0.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 32);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::seed(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SimRng::seed(4);
        for _ in 0..1000 {
            let v = r.range(5, 15);
            assert!((5..15).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_panics() {
        SimRng::seed(0).below(0);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = SimRng::seed(5);
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed(6);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(8);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0 + 1e-9));
    }
}
