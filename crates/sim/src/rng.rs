//! Deterministic random-number generation for reproducible experiments.
//!
//! Every workload generator and randomized test in the workspace draws from
//! [`SimRng`], which is seeded explicitly so a given experiment configuration
//! always produces the identical instruction stream and dataset.
//!
//! The generator is implemented in-tree (no external crates) so the whole
//! workspace builds and tests hermetically: a splitmix64 seed expander feeds
//! a xoshiro256** core — the same construction `rand`'s `SmallRng` family
//! uses, with well-studied statistical quality and a 2^256-1 period. The
//! output sequence for a given seed is part of the crate's contract (see the
//! golden-sequence regression test below): workload generation must stay
//! bit-identical across refactors, or every recorded experiment changes.

/// One step of the splitmix64 sequence; used to expand a 64-bit seed into
/// the 256-bit xoshiro state (the initialization recommended by the
/// xoshiro authors, which guarantees a non-zero state for every seed).
#[inline]
#[must_use]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, deterministic RNG wrapper.
///
/// # Example
///
/// ```
/// use maple_sim::rng::SimRng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    #[must_use]
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit value (xoshiro256** scrambler).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`, bias-free (rejection sampling on the
    /// largest multiple of `bound` that fits in 64 bits).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        // Accept v in [0, 2^64 - 2^64 mod bound): an exact multiple of
        // `bound`, so `v % bound` is uniform. Rejection is rare for any
        // bound far from 2^64.
        let reject = (u64::MAX % bound + 1) % bound;
        let zone = u64::MAX - reject;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range() requires lo < hi");
        lo + self.below(hi - lo)
    }

    /// Uniform `f64` in `[0, 1)` (53 high bits of the output, the standard
    /// mantissa-filling construction).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// The output sequence is a compatibility contract: workload
    /// generation (datasets, traffic, test inputs) must be bit-identical
    /// across refactors so recorded experiments and printed failure seeds
    /// stay reproducible. If this test ever fails, the RNG changed — do
    /// not update the constants without bumping every recorded result.
    #[test]
    fn golden_sequences_are_pinned() {
        let golden: [(u64, [u64; 16]); 3] = [
            (0, GOLDEN_SEED_0),
            (42, GOLDEN_SEED_42),
            (0xDEAD_BEEF, GOLDEN_SEED_DEADBEEF),
        ];
        for (seed, expect) in golden {
            let mut r = SimRng::seed(seed);
            let got: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
            assert_eq!(got, expect, "sequence drifted for seed {seed}");
        }
    }

    /// First 16 outputs for seed 0.
    const GOLDEN_SEED_0: [u64; 16] = [
        0x99EC_5F36_CB75_F2B4,
        0xBF6E_1F78_4956_452A,
        0x1A5F_849D_4933_E6E0,
        0x6AA5_94F1_262D_2D2C,
        0xBBA5_AD4A_1F84_2E59,
        0xFFEF_8375_D9EB_CACA,
        0x6C16_0DEE_D2F5_4C98,
        0x8920_AD64_8FC3_0A3F,
        0xDB03_2C0B_A753_9731,
        0xEB3A_475A_3E74_9A3D,
        0x1D42_993F_A43F_2A54,
        0x1136_1BF5_26A1_4BB5,
        0x1B4F_07A5_AB3D_8E9C,
        0xA7A3_257F_6986_DB7F,
        0x7EFD_AA95_605D_FC9C,
        0x4BDE_97C0_A78E_AAB8,
    ];

    /// First 16 outputs for seed 42.
    const GOLDEN_SEED_42: [u64; 16] = [
        0x1578_0B2E_0C2E_C716,
        0x6104_D986_6D11_3A7E,
        0xAE17_5332_39E4_99A1,
        0xECB8_AD47_03B3_60A1,
        0xFDE6_DC7F_E2EC_5E64,
        0xC50D_A531_0179_5238,
        0xB821_5485_5A65_DDB2,
        0xD99A_2743_EBE6_0087,
        0xC2E9_6E72_6E97_647E,
        0x9556_615F_775F_BC3D,
        0xAEB5_3B34_0C10_3971,
        0x4A69_DB98_73AF_8965,
        0xCD0F_EDA9_3006_C6B6,
        0x5248_0865_A4B4_2742,
        0xB60D_EC3B_F2D8_87CD,
        0xE0B5_5A68_B966_77FA,
    ];

    /// First 16 outputs for seed 0xDEAD_BEEF.
    const GOLDEN_SEED_DEADBEEF: [u64; 16] = [
        0xC555_5444_A74D_7E83,
        0x65C3_0D37_B4B1_6E38,
        0x54F7_7320_0A4E_FA23,
        0x429A_ED75_FB95_8AF7,
        0xFB0E_1DD6_9C25_5B2E,
        0x9D6D_02EC_5881_4A27,
        0xF419_9B9D_A2E4_B2A3,
        0x54BC_5B2C_11A4_540A,
        0xE85B_77DF_60AF_CA9B,
        0xA8B8_BA7E_A743_19BE,
        0x6345_0B50_B593_06C6,
        0x7200_F11C_574C_1433,
        0xAFF6_2560_4F16_B53B,
        0x0341_C563_213F_E478,
        0xA4B9_B941_5211_D8D4,
        0x80F7_CFC2_60A8_6FA9,
    ];

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 32);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::seed(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        // 10k draws over 8 buckets: every bucket within ±25% of the mean.
        let mut r = SimRng::seed(9);
        let mut counts = [0u32; 8];
        for _ in 0..10_000 {
            counts[r.below(8) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((937..=1562).contains(&c), "bucket {i} skewed: {c}");
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SimRng::seed(4);
        for _ in 0..1000 {
            let v = r.range(5, 15);
            assert!((5..15).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_panics() {
        SimRng::seed(0).below(0);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = SimRng::seed(5);
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed(6);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(8);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0 + 1e-9));
    }

    #[test]
    fn seed_zero_has_nonzero_state() {
        // xoshiro256** is degenerate on the all-zero state; splitmix64
        // expansion must never produce it.
        let r = SimRng::seed(0);
        assert_ne!(r.s, [0; 4]);
        let mut r = r;
        let distinct: std::collections::BTreeSet<u64> =
            (0..64).map(|_| r.next_u64()).collect();
        assert!(distinct.len() > 60, "seed 0 stream looks stuck");
    }
}
