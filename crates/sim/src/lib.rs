//! Cycle-level simulation kernel for the MAPLE manycore SoC model.
//!
//! This crate provides the shared infrastructure every timing model in the
//! workspace builds on:
//!
//! - [`Cycle`]: a newtype over the global cycle count with saturating
//!   arithmetic helpers.
//! - [`link::Link`] and [`link::DelayQueue`]: latency-annotated message
//!   channels used to connect components (cores, caches, NoC routers, MAPLE
//!   pipelines) without shared mutable ownership.
//! - [`stats`]: counters and log-scale histograms used for the performance
//!   counters the paper reads out (load counts, load latencies, queue
//!   occupancy).
//! - [`rng`]: a deterministic, seedable random-number source so every
//!   experiment is reproducible bit-for-bit.
//! - [`Clocked`] and [`Horizon`]: the uniform component interface the
//!   event-horizon scheduler is built on. Every timing component exposes
//!   `tick` (advance one cycle) and `next_event` (earliest future cycle at
//!   which it could act); the driver folds the answers into a [`Horizon`]
//!   and fast-forwards the clock across provably-quiescent gaps.
//!
//! # Example
//!
//! ```
//! use maple_sim::{Cycle, link::Link};
//!
//! let mut link: Link<&str> = Link::new(3); // three-cycle latency
//! link.send(Cycle(10), "hello");
//! assert_eq!(link.recv(Cycle(12)), None); // not yet delivered
//! assert_eq!(link.recv(Cycle(13)), Some("hello"));
//! ```

#![deny(missing_docs)]

pub mod fault;
pub mod link;
pub mod rng;
pub mod stats;

pub use fault::HangDiagnosis;

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in core clock cycles.
///
/// All components in the SoC share a single clock domain (as the FPGA
/// prototype in the paper does, at 60 MHz). `Cycle` is ordered and supports
/// the small amount of arithmetic timing models need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The zero cycle, i.e. the beginning of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// Returns the cycle `n` cycles after `self`, saturating on overflow.
    #[must_use]
    pub fn plus(self, n: u64) -> Cycle {
        Cycle(self.0.saturating_add(n))
    }

    /// Returns the number of cycles elapsed since `earlier`.
    ///
    /// Returns zero when `earlier` is in the future, which makes it safe to
    /// use with out-of-order bookkeeping.
    #[must_use]
    pub fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        self.plus(rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        *self = self.plus(rhs);
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    fn sub(self, rhs: Cycle) -> u64 {
        self.since(rhs)
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Self {
        Cycle(v)
    }
}

/// The uniform interface between timing components and the scheduler.
///
/// A clocked component does two things:
///
/// - [`tick`](Clocked::tick) advances it across one cycle boundary, with
///   whatever external context it needs threaded in through the generic
///   associated [`Ctx`](Clocked::Ctx) type (backing memory, descriptor
///   queues, …). Components with no external needs use `Ctx<'a> = ()`.
/// - [`next_event`](Clocked::next_event) reports the earliest cycle at or
///   after `now` at which ticking the component could have *any* observable
///   effect: state transitions, message deliveries, and also pure
///   bookkeeping such as per-cycle stall counters. `None` means the
///   component is quiescent forever absent external input.
///
/// The contract that makes quiescence skipping bit-exact: `next_event` may
/// be conservatively **early** (the driver ticks a component that then does
/// nothing — wasted host work, still correct) but must never be **late** (a
/// skipped cycle in which the component would have acted diverges from the
/// dense reference). Answers earlier than `now` are treated as `now`.
///
/// Everything is statically dispatched: the SoC driver folds the per-field
/// `next_event` answers into a [`Horizon`] without any `&mut dyn` objects.
pub trait Clocked {
    /// External context `tick` borrows for one cycle (e.g. the backing
    /// physical memory). `()` when the component is self-contained.
    type Ctx<'a>;

    /// Advances the component across the cycle boundary at `now`.
    fn tick(&mut self, now: Cycle, ctx: Self::Ctx<'_>);

    /// Earliest cycle at or after `now` at which ticking could have an
    /// observable effect, or `None` when the component is quiescent until
    /// external input arrives.
    fn next_event(&self, now: Cycle) -> Option<Cycle>;
}

/// Accumulator folding per-component [`Clocked::next_event`] answers into
/// the scheduler's horizon: the earliest cycle any component may act.
///
/// Identity is "no event" (`None`), so a fold over zero components yields a
/// fully-quiescent horizon and the driver can jump straight to its budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Horizon(Option<Cycle>);

impl Horizon {
    /// A horizon with no events observed yet.
    pub const IDLE: Horizon = Horizon(None);

    /// Folds one component's `next_event` answer into the horizon.
    pub fn observe(&mut self, event: Option<Cycle>) {
        self.0 = match (self.0, event) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        };
    }

    /// Folds a definite event at `cycle` into the horizon.
    pub fn at(&mut self, cycle: Cycle) {
        self.observe(Some(cycle));
    }

    /// The earliest observed event, or `None` when every component was
    /// quiescent.
    #[must_use]
    pub fn earliest(self) -> Option<Cycle> {
        self.0
    }
}

/// Outcome of running a simulation loop.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// The completion condition was met at the contained cycle.
    Finished(Cycle),
    /// The cycle budget was exhausted before completion.
    TimedOut(Cycle),
    /// The run stopped without completing and the driver captured a
    /// structured snapshot of the stuck state (cycle-budget expiry with
    /// outstanding work, or a poisoned engine). Carries the cycle inside
    /// the diagnosis.
    Hung(Box<HangDiagnosis>),
}

impl RunOutcome {
    /// The cycle at which the run stopped, regardless of outcome.
    #[must_use]
    pub fn cycle(&self) -> Cycle {
        match self {
            RunOutcome::Finished(c) | RunOutcome::TimedOut(c) => *c,
            RunOutcome::Hung(d) => d.at,
        }
    }

    /// Whether the run completed before the budget expired.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        matches!(self, RunOutcome::Finished(_))
    }

    /// The hang diagnosis, when the driver captured one.
    #[must_use]
    pub fn diagnosis(&self) -> Option<&HangDiagnosis> {
        match self {
            RunOutcome::Hung(d) => Some(d),
            _ => None,
        }
    }
}

/// Drives `tick` once per cycle until `done` reports true or `max_cycles`
/// elapses.
///
/// This is the outermost loop of every experiment. `tick` receives the
/// current cycle; `done` is evaluated after each tick.
pub fn run_until(
    max_cycles: u64,
    mut tick: impl FnMut(Cycle),
    mut done: impl FnMut() -> bool,
) -> RunOutcome {
    let mut now = Cycle::ZERO;
    while now.0 < max_cycles {
        tick(now);
        if done() {
            return RunOutcome::Finished(now);
        }
        now += 1;
    }
    RunOutcome::TimedOut(now)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let c = Cycle(10);
        assert_eq!(c.plus(5), Cycle(15));
        assert_eq!(c + 5, Cycle(15));
        assert_eq!(Cycle(15).since(c), 5);
        assert_eq!(Cycle(15) - c, 5);
        assert_eq!(c.since(Cycle(15)), 0, "never negative");
    }

    #[test]
    fn cycle_saturates() {
        assert_eq!(Cycle(u64::MAX).plus(1), Cycle(u64::MAX));
    }

    #[test]
    fn cycle_display_and_order() {
        assert_eq!(Cycle(3).to_string(), "cycle 3");
        assert!(Cycle(3) < Cycle(4));
        let mut c = Cycle(1);
        c += 2;
        assert_eq!(c, Cycle(3));
    }

    #[test]
    fn run_until_finishes() {
        let n = std::cell::Cell::new(0u64);
        let outcome = run_until(100, |_| n.set(n.get() + 1), || n.get() == 7);
        let n = n.get();
        assert_eq!(outcome, RunOutcome::Finished(Cycle(6)));
        assert_eq!(outcome.cycle(), Cycle(6));
        assert!(outcome.is_finished());
        assert_eq!(n, 7);
    }

    #[test]
    fn run_until_times_out() {
        let outcome = run_until(10, |_| {}, || false);
        assert_eq!(outcome, RunOutcome::TimedOut(Cycle(10)));
        assert!(!outcome.is_finished());
    }

    #[test]
    fn cycle_from_u64() {
        assert_eq!(Cycle::from(9), Cycle(9));
    }
}
