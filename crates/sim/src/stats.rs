//! Performance counters and histograms.
//!
//! These are the model-side equivalents of the hardware performance counters
//! MAPLE exposes through its debug operations (Section 3.1 of the paper) and
//! of the core counters the FPGA evaluation reads (load counts in Figure 10,
//! average load latency in Figure 11).

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use maple_sim::stats::Counter;
///
/// let mut loads = Counter::default();
/// loads.inc();
/// loads.add(2);
/// assert_eq!(loads.get(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A histogram of `u64` samples with power-of-two buckets plus exact
/// sum/count/min/max, sized for latency distributions.
///
/// Bucket `i` covers values in `[2^i, 2^(i+1))`; bucket 0 covers `{0, 1}`.
///
/// # Example
///
/// ```
/// use maple_sim::stats::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(2);
/// h.record(300);
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.mean(), 151.0);
/// assert_eq!(h.max(), Some(300));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: Option<u64>,
    max: Option<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64],
            count: 0,
            sum: 0,
            min: None,
            max: None,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (64 - value.leading_zeros()).saturating_sub(1) as usize;
        self.buckets[idx.min(63)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean of samples, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest recorded sample.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        self.max
    }

    /// Occupancy of the power-of-two bucket covering `[2^i, 2^(i+1))`.
    #[must_use]
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i.min(63)]
    }

    /// Approximate percentile (0.0–100.0) from bucket boundaries.
    ///
    /// Returns the upper bound of the bucket containing the requested rank,
    /// or `None` when empty.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Some(if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 });
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Resets to empty.
    pub fn reset(&mut self) {
        *self = Histogram::new();
    }
}

/// Computes the geometric mean of a slice of ratios (used for the "geomean"
/// columns of every figure in the paper).
///
/// Returns 0.0 for an empty slice.
///
/// # Example
///
/// ```
/// use maple_sim::stats::geomean;
///
/// let g = geomean(&[2.0, 8.0]);
/// assert!((g - 4.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_mean_min_max() {
        let mut h = Histogram::new();
        for v in [10, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 60);
        assert_eq!(h.mean(), 20.0);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(30));
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.min(), None);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        assert_eq!(h.bucket(0), 2); // 0 and 1
        assert_eq!(h.bucket(1), 2); // 2 and 3
        assert_eq!(h.bucket(2), 1); // 4
    }

    #[test]
    fn histogram_percentile_monotone() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0).unwrap();
        let p99 = h.percentile(99.0).unwrap();
        assert!(p50 <= p99);
        assert!(p50 >= 500 / 2); // within bucket resolution
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), 105);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(100));
    }

    #[test]
    fn geomean_values() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_large_values_clamp() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.bucket(63), 1);
        assert_eq!(h.percentile(100.0), Some(u64::MAX));
    }
}
