//! Latency-annotated message channels connecting timing components.
//!
//! Components in the SoC never hold references to each other. Instead, each
//! pair of communicating components shares a [`Link`] (fixed latency, FIFO)
//! or a [`DelayQueue`] (per-message latency, e.g. DRAM responses completing
//! out of order). The owner of the simulation loop moves messages between
//! links each cycle.

use std::collections::{BinaryHeap, VecDeque};

use crate::Cycle;

/// A FIFO channel that delivers each message a fixed number of cycles after
/// it was sent.
///
/// Because sends happen at monotonically non-decreasing cycles and the
/// latency is constant, delivery order equals send order; `Link` therefore
/// uses a plain queue internally.
///
/// # Example
///
/// ```
/// use maple_sim::{Cycle, link::Link};
///
/// let mut l: Link<u32> = Link::new(2);
/// l.send(Cycle(0), 1);
/// l.send(Cycle(0), 2);
/// assert_eq!(l.recv(Cycle(2)), Some(1));
/// assert_eq!(l.recv(Cycle(2)), Some(2));
/// assert_eq!(l.recv(Cycle(2)), None);
/// ```
#[derive(Debug, Clone)]
pub struct Link<T> {
    latency: u64,
    queue: VecDeque<(Cycle, T)>,
}

impl<T> Link<T> {
    /// Creates a link whose messages arrive `latency` cycles after sending.
    #[must_use]
    pub fn new(latency: u64) -> Self {
        Link {
            latency,
            queue: VecDeque::new(),
        }
    }

    /// The fixed delivery latency of this link in cycles.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Enqueues `msg` at cycle `now`; it becomes receivable at
    /// `now + latency`.
    pub fn send(&mut self, now: Cycle, msg: T) {
        self.queue.push_back((now.plus(self.latency), msg));
    }

    /// Receives the oldest message whose delivery time has arrived, if any.
    pub fn recv(&mut self, now: Cycle) -> Option<T> {
        match self.queue.front() {
            Some((deliver_at, _)) if *deliver_at <= now => {
                self.queue.pop_front().map(|(_, m)| m)
            }
            _ => None,
        }
    }

    /// Peeks at the oldest deliverable message without removing it.
    pub fn peek(&self, now: Cycle) -> Option<&T> {
        match self.queue.front() {
            Some((deliver_at, msg)) if *deliver_at <= now => Some(msg),
            _ => None,
        }
    }

    /// The delivery time of the oldest in-flight message, if any. FIFO
    /// order makes the front message the earliest.
    #[must_use]
    pub fn next_deadline(&self) -> Option<Cycle> {
        self.queue.front().map(|(deliver_at, _)| *deliver_at)
    }

    /// Number of messages in flight (delivered or not).
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no messages are in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Drains every message that is deliverable at `now`, preserving order.
    pub fn drain_ready(&mut self, now: Cycle) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(m) = self.recv(now) {
            out.push(m);
        }
        out
    }
}

struct Pending<T> {
    deliver_at: Cycle,
    seq: u64,
    msg: T,
}

impl<T: Clone> Clone for Pending<T> {
    fn clone(&self) -> Self {
        Pending {
            deliver_at: self.deliver_at,
            seq: self.seq,
            msg: self.msg.clone(),
        }
    }
}

impl<T> PartialEq for Pending<T> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<T> Eq for Pending<T> {}
impl<T> PartialOrd for Pending<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Pending<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap but we want earliest first.
        other
            .deliver_at
            .cmp(&self.deliver_at)
            .then(other.seq.cmp(&self.seq))
    }
}

/// A channel where every message carries its own delivery time.
///
/// Used where completion times vary per message — DRAM accesses contending
/// for bandwidth, page-table walks, MAPLE memory responses arriving out of
/// order. Messages with equal delivery times are delivered in send order.
///
/// # Example
///
/// ```
/// use maple_sim::{Cycle, link::DelayQueue};
///
/// let mut q: DelayQueue<&str> = DelayQueue::new();
/// q.send_at(Cycle(50), "slow");
/// q.send_at(Cycle(10), "fast");
/// assert_eq!(q.recv(Cycle(10)), Some("fast"));
/// assert_eq!(q.recv(Cycle(10)), None);
/// assert_eq!(q.recv(Cycle(50)), Some("slow"));
/// ```
pub struct DelayQueue<T> {
    heap: BinaryHeap<Pending<T>>,
    next_seq: u64,
}

impl<T: Clone> Clone for DelayQueue<T> {
    fn clone(&self) -> Self {
        DelayQueue {
            heap: self.heap.clone(),
            next_seq: self.next_seq,
        }
    }
}

impl<T> std::fmt::Debug for DelayQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DelayQueue")
            .field("in_flight", &self.heap.len())
            .finish()
    }
}

impl<T> Default for DelayQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> DelayQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        DelayQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `msg` for delivery at the absolute cycle `deliver_at`.
    pub fn send_at(&mut self, deliver_at: Cycle, msg: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Pending {
            deliver_at,
            seq,
            msg,
        });
    }

    /// Schedules `msg` for delivery `latency` cycles after `now`.
    pub fn send(&mut self, now: Cycle, latency: u64, msg: T) {
        self.send_at(now.plus(latency), msg);
    }

    /// Receives the earliest message whose delivery time has arrived.
    pub fn recv(&mut self, now: Cycle) -> Option<T> {
        match self.heap.peek() {
            Some(p) if p.deliver_at <= now => self.heap.pop().map(|p| p.msg),
            _ => None,
        }
    }

    /// The delivery time of the earliest in-flight message.
    #[must_use]
    pub fn next_deadline(&self) -> Option<Cycle> {
        self.heap.peek().map(|p| p.deliver_at)
    }

    /// Number of in-flight messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no messages are in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drains every message deliverable at `now` in delivery-time order.
    pub fn drain_ready(&mut self, now: Cycle) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(m) = self.recv(now) {
            out.push(m);
        }
        out
    }
}

impl<T> crate::Clocked for DelayQueue<T> {
    type Ctx<'a> = ();

    /// Delivery queues advance passively — the owner pulls due messages
    /// with [`DelayQueue::recv`]; there is no per-cycle work.
    fn tick(&mut self, _now: Cycle, (): ()) {}

    /// The earliest in-flight delivery, clamped to `now` (an overdue
    /// message is receivable immediately).
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.next_deadline().map(|d| d.max(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_delivers_after_latency() {
        let mut l: Link<u32> = Link::new(5);
        assert_eq!(l.latency(), 5);
        l.send(Cycle(0), 42);
        for c in 0..5 {
            assert_eq!(l.recv(Cycle(c)), None);
        }
        assert_eq!(l.peek(Cycle(5)), Some(&42));
        assert_eq!(l.recv(Cycle(5)), Some(42));
        assert!(l.is_empty());
    }

    #[test]
    fn link_preserves_fifo_order() {
        let mut l: Link<u32> = Link::new(1);
        for i in 0..10 {
            l.send(Cycle(i), i as u32);
        }
        assert_eq!(l.len(), 10);
        let got = l.drain_ready(Cycle(100));
        assert_eq!(got, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn link_zero_latency_same_cycle() {
        let mut l: Link<&str> = Link::new(0);
        l.send(Cycle(7), "x");
        assert_eq!(l.recv(Cycle(7)), Some("x"));
    }

    #[test]
    fn delay_queue_orders_by_deadline() {
        let mut q: DelayQueue<u32> = DelayQueue::new();
        q.send_at(Cycle(30), 3);
        q.send_at(Cycle(10), 1);
        q.send_at(Cycle(20), 2);
        assert_eq!(q.next_deadline(), Some(Cycle(10)));
        assert_eq!(q.drain_ready(Cycle(25)), vec![1, 2]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.recv(Cycle(29)), None);
        assert_eq!(q.recv(Cycle(30)), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn delay_queue_ties_broken_by_send_order() {
        let mut q: DelayQueue<u32> = DelayQueue::new();
        for i in 0..5 {
            q.send_at(Cycle(10), i);
        }
        assert_eq!(q.drain_ready(Cycle(10)), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn delay_queue_relative_send() {
        let mut q: DelayQueue<u8> = DelayQueue::new();
        q.send(Cycle(100), 7, 9);
        assert_eq!(q.recv(Cycle(106)), None);
        assert_eq!(q.recv(Cycle(107)), Some(9));
    }
}
