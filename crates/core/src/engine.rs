//! The MAPLE engine: microarchitecture of Figure 6 as a timing model.
//!
//! One engine instance owns:
//!
//! - a **Configuration pipeline** (non-blocking) for queue setup, LIMA
//!   programming, driver operations and performance-counter reads;
//! - a **Produce pipeline** that accepts `PRODUCE`/`PRODUCE_PTR`/`PREFETCH`
//!   stores, translates pointers through the engine MMU, reserves queue
//!   slots (the slot index is the memory transaction ID used to restore
//!   program order), and issues the memory fetches;
//! - a **Consume pipeline** that answers `CONSUME` loads, buffering them
//!   while the queue is empty (no polling);
//! - the **queue controller** with its scratchpad-resident circular FIFOs;
//! - the **LIMA unit** that fetches loops of indirect accesses `A[B[i]]`
//!   by streaming `B` in 64-byte chunks and feeding pointer-produces or LLC
//!   prefetches into the Produce path;
//! - a 16-entry TLB plus hardware page-table walker, with page-fault
//!   interrupts and shootdown support.
//!
//! The separate pipelines avoid deadlock: a full queue buffers only its own
//! produce operations; traffic to other queues keeps flowing.

use std::collections::{HashMap, VecDeque};

use maple_mem::l2::OutboundResp;
use maple_mem::msg::{MemReq, MemReqKind, MemResp, ServedBy};
use maple_mem::phys::{PAddr, PhysMem, LINE_SIZE};
use maple_noc::Coord;
use maple_sim::fault::{FaultSchedule, WatchdogConfig};
use maple_sim::link::DelayQueue;
use maple_sim::stats::Counter;
use maple_sim::Cycle;
use maple_trace::{FaultSite, TraceEvent, Tracer};
use maple_vm::page_table::{PageFault, PageTable};
use maple_vm::tlb::Tlb;
use maple_vm::walker::walk_latency;
use maple_vm::{VAddr, VirtPage};

use crate::mmio::{
    decode_config_queue, decode_lima_go, decode_lima_range, decode_load, decode_store, LoadOp,
    StoreOp,
};
use crate::queue::{QueueController, Slot};

/// Engine configuration (RTL parameters fixed at tape-out).
#[derive(Debug, Clone, Copy)]
pub struct MapleConfig {
    /// Hardware queues per instance (paper: 8).
    pub queues: usize,
    /// Shared scratchpad capacity (paper: 1 KB).
    pub scratchpad_bytes: u64,
    /// Default entries per queue (paper: 32).
    pub default_entries: usize,
    /// Default entry size in bytes (paper: 4).
    pub default_entry_bytes: u8,
    /// NoC-decoder + dispatch latency for incoming operations.
    pub decode_latency: u64,
    /// Response-path latency (pipeline exit + NoC encoder).
    pub respond_latency: u64,
    /// Engine TLB entries (paper: 16).
    pub tlb_entries: usize,
    /// Latency of one PTW level (one L2 read).
    pub ptw_read_latency: u64,
    /// LIMA command queue depth.
    pub lima_cmd_depth: usize,
    /// Outstanding 64-byte `B` chunks LIMA keeps in flight.
    pub lima_chunks_inflight: usize,
    /// Indirect elements LIMA feeds into the Produce path per cycle.
    pub lima_rate: usize,
}

impl Default for MapleConfig {
    fn default() -> Self {
        MapleConfig {
            queues: 8,
            scratchpad_bytes: 1024,
            default_entries: 32,
            default_entry_bytes: 4,
            decode_latency: 2,
            respond_latency: 2,
            tlb_entries: 16,
            ptw_read_latency: 30,
            lima_cmd_depth: 4,
            lima_chunks_inflight: 4,
            lima_rate: 2,
        }
    }
}

/// A pending page fault raised by the engine MMU (the interrupt payload the
/// MAPLE driver reads back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineFault {
    /// The virtual address that faulted.
    pub vaddr: VAddr,
    /// The architectural fault.
    pub fault: PageFault,
}

/// Engine performance counters (exposed through the debug/stat MMIO ops).
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Memory fetches the engine issued (pointer produces + LIMA).
    pub mem_fetches: Counter,
    /// Speculative prefetches pushed into the LLC.
    pub llc_prefetches: Counter,
    /// Page faults raised.
    pub faults: Counter,
    /// LIMA commands completed.
    pub lima_completed: Counter,
    /// Produce operations buffered because their queue was full.
    pub produce_stalls: Counter,
    /// Consume operations buffered because their queue was empty.
    pub consume_stalls: Counter,
    /// Memory responses discarded because their transaction was dropped
    /// by a `RESET` while the reply crossed the NoC.
    pub stale_responses: Counter,
    /// Responses/acks lost at the source by the fault plane's MMIO
    /// ack-loss schedule.
    pub acks_dropped: Counter,
    /// Watchdog expiries on the engine's own memory fetches.
    pub fetch_timeouts: Counter,
    /// Memory fetches re-issued by the watchdog after a timeout.
    pub fetch_retries: Counter,
    /// Fetches abandoned after retries were exhausted (or that were not
    /// retryable, e.g. atomics); each one poisons the engine.
    pub poisoned_fetches: Counter,
    /// Completed responses replayed from the dedup cache when a core's
    /// watchdog re-sent an already-answered request.
    pub replayed_responses: Counter,
    /// Re-sent requests dropped because the original is still in flight.
    pub duplicate_requests: Counter,
    /// Requests rejected with an error response (e.g. a queue index
    /// outside the configured range).
    pub bad_requests: Counter,
}

#[derive(Debug, Clone, Copy)]
enum ProducePayload {
    /// Immediate data.
    Data(u64),
    /// A pointer to fetch (non-coherent DRAM path unless `coherent`).
    Ptr { va: VAddr, coherent: bool },
    /// Extension: a pointer to atomically update at the L2 serialization
    /// point; the old value is enqueued in program order.
    AmoPtr {
        va: VAddr,
        kind: maple_mem::phys::AmoKind,
    },
}

#[derive(Debug, Clone, Copy)]
struct PendingProduce {
    payload: ProducePayload,
    /// Where and how to acknowledge the store once accepted.
    ack_dst: Coord,
    ack_id: u64,
}

#[derive(Debug, Clone, Copy)]
struct PendingConsume {
    dst: Coord,
    id: u64,
    size: u8,
}

#[derive(Debug, Clone, Copy)]
enum FetchPurpose {
    /// A pointer-produce fetch destined for a queue slot.
    QueueFill { q: u8, slot: Slot },
    /// A LIMA chunk of the `B` array.
    LimaChunk { seq: u64 },
}

/// Book-keeping for one outstanding engine memory fetch: what the data is
/// for, plus everything the watchdog needs to re-issue it.
#[derive(Debug, Clone, Copy)]
struct InflightFetch {
    purpose: FetchPurpose,
    req: MemReq,
    issued: Cycle,
    retries: u32,
}

/// Completed-response dedup cache entries kept for replay.
const SEEN_CAP: usize = 1024;

#[derive(Debug, Clone, Copy)]
struct LimaCmd {
    a_base: VAddr,
    b_base: VAddr,
    lo: u32,
    hi: u32,
    speculative: bool,
    queue: u8,
    a_elem: u8,
    b_elem: u8,
}

#[derive(Debug, Clone, Copy)]
struct LimaChunkRec {
    seq: u64,
    /// Number of B elements in this chunk.
    count: u32,
    /// Physical base of the chunk (translation done at fetch time).
    paddr: PAddr,
    ready: bool,
}

#[derive(Debug, Clone)]
struct LimaActive {
    cmd: LimaCmd,
    /// Next B index to fetch (chunk-granular).
    next_fetch: u32,
    /// Chunks in flight or awaiting processing, in order.
    chunks: VecDeque<LimaChunkRec>,
    /// Index of the next element to process within the head chunk.
    head_pos: u32,
    next_chunk_seq: u64,
}

/// A saved snapshot of one tenant's architectural engine state: everything
/// the virtualization driver must save and restore across a context switch
/// — the queue controller (occupancy, reservations, in-order slots), the
/// fetch unit (in-flight fetches, buffered produce/consume/prefetch heads),
/// the LIMA unit, queue ownership, and the MMU view (TLB contents,
/// page-table root, pending fault).
///
/// Physical-engine-resident state is deliberately **not** part of a
/// context: performance counters, the monotonic transaction-ID allocator,
/// the response-replay cache, watchdog/fault-plane hooks, and the tracer
/// all stay with the hardware instance (exactly the state [`Engine::reset`]
/// preserves), so transactions issued under one tenant can never alias
/// another tenant's after a switch.
#[derive(Debug, Clone)]
pub struct EngineContext {
    queues: QueueController,
    tlb: Tlb,
    page_table: Option<PageTable>,
    walker_free_at: Cycle,
    fault: Option<EngineFault>,
    incoming: DelayQueue<MemReq>,
    produce_pending: Vec<VecDeque<PendingProduce>>,
    amo_operand: Vec<u64>,
    prefetch_pending: VecDeque<PendingProduce>,
    consume_pending: Vec<VecDeque<PendingConsume>>,
    open_owner: Vec<Option<Coord>>,
    out_resp: DelayQueue<OutboundResp>,
    out_mem: VecDeque<MemReq>,
    inflight: HashMap<u64, InflightFetch>,
    lima_regs: (VAddr, VAddr, u32, u32),
    lima_cmds: VecDeque<LimaCmd>,
    lima_go_pending: VecDeque<(Coord, u64, LimaCmd)>,
    lima: Option<LimaActive>,
    poisoned: bool,
}

impl EngineContext {
    /// Outstanding memory fetches captured in this context.
    #[must_use]
    pub fn inflight_fetches(&self) -> usize {
        self.inflight.len()
    }

    /// Buffered produce operations captured across all queues.
    #[must_use]
    pub fn pending_produces(&self) -> usize {
        self.produce_pending.iter().map(VecDeque::len).sum()
    }

    /// Buffered consume operations captured across all queues.
    #[must_use]
    pub fn pending_consumes(&self) -> usize {
        self.consume_pending.iter().map(VecDeque::len).sum()
    }

    /// Occupancy of every captured hardware queue.
    #[must_use]
    pub fn queue_occupancies(&self) -> Vec<usize> {
        (0..self.queues.count())
            .map(|q| self.queues.queue(q as u8).occupancy())
            .collect()
    }

    /// Whether the captured state holds no in-flight work at all — the
    /// cheap-switch case: restoring a quiescent context cannot be starved
    /// by responses that raced a switch-out.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.incoming.is_empty()
            && self.inflight.is_empty()
            && self.out_mem.is_empty()
            && self.out_resp.is_empty()
            && self.lima.is_none()
            && self.lima_cmds.is_empty()
            && self.lima_go_pending.is_empty()
            && self.produce_pending.iter().all(VecDeque::is_empty)
            && self.prefetch_pending.is_empty()
            && self.consume_pending.iter().all(VecDeque::is_empty)
    }
}

/// The MAPLE engine. Wire it to a tile: deliver incoming MMIO requests with
/// [`Engine::accept`], memory responses with [`Engine::on_mem_resp`], call
/// [`Engine::tick`] each cycle, and drain [`Engine::pop_mem_request`] /
/// [`Engine::pop_response`] into the NoC.
#[derive(Debug)]
pub struct Engine {
    cfg: MapleConfig,
    queues: QueueController,
    tlb: Tlb,
    page_table: Option<PageTable>,
    walker_free_at: Cycle,
    fault: Option<EngineFault>,
    incoming: DelayQueue<MemReq>,
    produce_pending: Vec<VecDeque<PendingProduce>>,
    /// Per-queue operand register for the atomic-produce extension.
    amo_operand: Vec<u64>,
    prefetch_pending: VecDeque<PendingProduce>,
    consume_pending: Vec<VecDeque<PendingConsume>>,
    open_owner: Vec<Option<Coord>>,
    out_resp: DelayQueue<OutboundResp>,
    out_mem: VecDeque<MemReq>,
    next_txid: u64,
    inflight: HashMap<u64, InflightFetch>,
    lima_regs: (VAddr, VAddr, u32, u32), // staged A, B, lo, hi
    lima_cmds: VecDeque<LimaCmd>,
    lima_go_pending: VecDeque<(Coord, u64, LimaCmd)>,
    lima: Option<LimaActive>,
    stats: EngineStats,
    /// Request dedup / response replay cache, keyed by (requester, txid):
    /// `None` = the original request is still being processed, `Some` =
    /// the response data, replayed when a core watchdog re-sends the
    /// request. Survives `RESET` (like `next_txid`) so pre-reset retries
    /// stay idempotent.
    seen: HashMap<(Coord, u64), Option<u64>>,
    /// FIFO eviction order of *completed* `seen` entries.
    seen_order: VecDeque<(Coord, u64)>,
    /// Fetch watchdog; `None` (the default) never times out.
    watchdog: Option<WatchdogConfig>,
    /// MMIO ack-loss schedule from the fault plane.
    ack_fault: Option<FaultSchedule>,
    /// Set when a fetch exhausted its retries; the driver must reset or
    /// retire this instance.
    poisoned: bool,
    tracer: Tracer,
    /// Engine index used in trace events (set alongside the tracer).
    trace_id: usize,
}

impl Engine {
    /// Creates an idle engine.
    ///
    /// # Panics
    ///
    /// Panics if the default queue shape exceeds the scratchpad budget.
    #[must_use]
    pub fn new(cfg: MapleConfig) -> Self {
        let queues = QueueController::new(
            cfg.queues,
            cfg.default_entries,
            cfg.default_entry_bytes,
            cfg.scratchpad_bytes,
        )
        .expect("default queue configuration must fit the scratchpad");
        Engine {
            queues,
            tlb: Tlb::new(cfg.tlb_entries),
            page_table: None,
            walker_free_at: Cycle::ZERO,
            fault: None,
            incoming: DelayQueue::new(),
            produce_pending: (0..cfg.queues).map(|_| VecDeque::new()).collect(),
            amo_operand: vec![0; cfg.queues],
            prefetch_pending: VecDeque::new(),
            consume_pending: (0..cfg.queues).map(|_| VecDeque::new()).collect(),
            open_owner: vec![None; cfg.queues],
            out_resp: DelayQueue::new(),
            out_mem: VecDeque::new(),
            next_txid: 0,
            inflight: HashMap::new(),
            lima_regs: (VAddr(0), VAddr(0), 0, 0),
            lima_cmds: VecDeque::new(),
            lima_go_pending: VecDeque::new(),
            lima: None,
            stats: EngineStats::default(),
            seen: HashMap::new(),
            seen_order: VecDeque::new(),
            watchdog: None,
            ack_fault: None,
            poisoned: false,
            tracer: Tracer::disabled(),
            trace_id: 0,
            cfg,
        }
    }

    /// Installs an observability tracer and the engine index to label
    /// events with. Tracing never changes timing.
    pub fn set_tracer(&mut self, id: usize, tracer: Tracer) {
        self.trace_id = id;
        self.tracer = tracer;
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> MapleConfig {
        self.cfg
    }

    /// Programs the MMU root (driver path; also reachable via the
    /// `SET_PT_ROOT` MMIO store).
    pub fn set_page_table(&mut self, pt: PageTable) {
        self.page_table = Some(pt);
    }

    /// The pending fault, if the engine raised one (the interrupt line).
    #[must_use]
    pub fn fault(&self) -> Option<EngineFault> {
        self.fault
    }

    /// Driver: clear the fault after fixing the page tables; the stalled
    /// operation retries.
    pub fn resolve_fault(&mut self) {
        self.fault = None;
    }

    /// Invalidate the engine TLB entry for a page (Linux shootdown
    /// callback; also reachable via the `TLB_SHOOTDOWN` MMIO store).
    pub fn tlb_shootdown(&mut self, vpn: VirtPage) {
        self.tlb.shootdown(vpn);
    }

    /// Arms the per-fetch watchdog: an outstanding memory fetch past its
    /// (exponentially backed-off) deadline is re-issued, and poisoned
    /// after `max_retries` re-issues. Off by default.
    pub fn set_watchdog(&mut self, w: WatchdogConfig) {
        self.watchdog = Some(w);
    }

    /// Installs the fault plane's MMIO ack-loss schedule: outbound
    /// responses/acks are dropped at the source with the scheduled rate.
    pub fn set_ack_fault(&mut self, f: FaultSchedule) {
        self.ack_fault = Some(f);
    }

    /// Whether a fetch exhausted its watchdog retries. A poisoned engine
    /// keeps decoding but can no longer guarantee forward progress; the
    /// driver should retire it.
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Outstanding memory fetches (no response yet).
    #[must_use]
    pub fn inflight_fetches(&self) -> usize {
        self.inflight.len()
    }

    /// Produce operations buffered across all queues.
    #[must_use]
    pub fn pending_produces(&self) -> usize {
        self.produce_pending.iter().map(VecDeque::len).sum()
    }

    /// Consume operations buffered across all queues.
    #[must_use]
    pub fn pending_consumes(&self) -> usize {
        self.consume_pending.iter().map(VecDeque::len).sum()
    }

    /// Current occupancy of every hardware queue.
    #[must_use]
    pub fn queue_occupancies(&self) -> Vec<usize> {
        (0..self.cfg.queues)
            .map(|q| self.queues.queue(q as u8).occupancy())
            .collect()
    }

    /// Resets all engine state (the MMIO `RESET` / driver `INIT` path).
    ///
    /// The MMU root, statistics and transaction-ID counter survive:
    /// responses for dropped transactions may still be crossing the NoC
    /// and must never alias new ones. The response-replay cache and the
    /// fault-plane hooks survive for the same reason — a core retry of a
    /// pre-reset transaction must stay idempotent.
    pub fn reset(&mut self) {
        let root = self.page_table;
        let cfg = self.cfg;
        let stats = std::mem::take(&mut self.stats);
        let next_txid = self.next_txid;
        let mut seen = std::mem::take(&mut self.seen);
        // In-progress entries guard operations the reset just dropped;
        // keeping them would make a core's retry of such an operation a
        // "duplicate" forever. Completed entries stay for replay.
        seen.retain(|_, v| v.is_some());
        let seen_order = std::mem::take(&mut self.seen_order);
        let watchdog = self.watchdog;
        let ack_fault = self.ack_fault.take();
        let tracer = self.tracer.clone();
        let trace_id = self.trace_id;
        *self = Engine::new(cfg);
        self.tracer = tracer;
        self.trace_id = trace_id;
        self.page_table = root;
        self.stats = stats;
        self.next_txid = next_txid;
        self.seen = seen;
        self.seen_order = seen_order;
        self.watchdog = watchdog;
        self.ack_fault = ack_fault;
    }

    /// Captures the tenant-visible architectural state for a driver-level
    /// context switch. The engine itself is unchanged; pair with
    /// [`Engine::restore_context`] (for the incoming tenant) or
    /// [`Engine::reset`] (for a fresh one) to complete the switch.
    #[must_use]
    pub fn save_context(&self) -> EngineContext {
        EngineContext {
            queues: self.queues.clone(),
            tlb: self.tlb.clone(),
            page_table: self.page_table,
            walker_free_at: self.walker_free_at,
            fault: self.fault,
            incoming: self.incoming.clone(),
            produce_pending: self.produce_pending.clone(),
            amo_operand: self.amo_operand.clone(),
            prefetch_pending: self.prefetch_pending.clone(),
            consume_pending: self.consume_pending.clone(),
            open_owner: self.open_owner.clone(),
            out_resp: self.out_resp.clone(),
            out_mem: self.out_mem.clone(),
            inflight: self.inflight.clone(),
            lima_regs: self.lima_regs,
            lima_cmds: self.lima_cmds.clone(),
            lima_go_pending: self.lima_go_pending.clone(),
            lima: self.lima.clone(),
            poisoned: self.poisoned,
        }
    }

    /// Installs a previously saved tenant context, replacing the current
    /// architectural state bit for bit. Physical-engine state (counters,
    /// transaction-ID allocator, replay cache, watchdog/fault hooks,
    /// tracer) is untouched — see [`EngineContext`].
    ///
    /// # Panics
    ///
    /// Panics if the context was captured from an engine with a different
    /// queue count (contexts are not portable across RTL configurations).
    pub fn restore_context(&mut self, ctx: EngineContext) {
        assert_eq!(
            ctx.queues.count(),
            self.cfg.queues,
            "engine context restored onto an incompatible configuration"
        );
        self.queues = ctx.queues;
        self.tlb = ctx.tlb;
        self.page_table = ctx.page_table;
        self.walker_free_at = ctx.walker_free_at;
        self.fault = ctx.fault;
        self.incoming = ctx.incoming;
        self.produce_pending = ctx.produce_pending;
        self.amo_operand = ctx.amo_operand;
        self.prefetch_pending = ctx.prefetch_pending;
        self.consume_pending = ctx.consume_pending;
        self.open_owner = ctx.open_owner;
        self.out_resp = ctx.out_resp;
        self.out_mem = ctx.out_mem;
        self.inflight = ctx.inflight;
        self.lima_regs = ctx.lima_regs;
        self.lima_cmds = ctx.lima_cmds;
        self.lima_go_pending = ctx.lima_go_pending;
        self.lima = ctx.lima;
        self.poisoned = ctx.poisoned;
    }

    /// Drops every entry of the MMIO replay (dedup) cache.
    ///
    /// The cache makes in-run core-side retries idempotent; its keys are
    /// `(core tile, L1 transaction id)`, and a freshly (re)loaded core
    /// restarts its transaction ids from zero. The serving driver
    /// therefore flushes the cache at batch boundaries — quiescent points
    /// with no outstanding transactions, so no retry can ever need a
    /// dropped entry, while a stale entry would wrongly replay a previous
    /// request's response to a new core with a recycled id.
    pub fn flush_replay_cache(&mut self) {
        self.seen.clear();
        self.seen_order.clear();
    }

    /// Engine statistics.
    #[must_use]
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// TLB miss count (for `STAT_TLB_MISSES`).
    #[must_use]
    pub fn tlb_misses(&self) -> u64 {
        self.tlb.misses()
    }

    /// Direct read access to a queue (tests, occupancy sampling).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn queue(&self, q: u8) -> &crate::queue::FifoQueue {
        self.queues.queue(q)
    }

    /// Whether the engine holds no in-flight work at all.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.incoming.is_empty()
            && self.inflight.is_empty()
            && self.out_mem.is_empty()
            && self.out_resp.is_empty()
            && self.lima.is_none()
            && self.lima_cmds.is_empty()
            && self.lima_go_pending.is_empty()
            && self.produce_pending.iter().all(VecDeque::is_empty)
            && self.prefetch_pending.is_empty()
            && self.consume_pending.iter().all(VecDeque::is_empty)
    }

    /// Accepts an MMIO request from the NoC (a core's load or store to this
    /// instance's page).
    pub fn accept(&mut self, now: Cycle, req: MemReq) {
        self.incoming.send(now, self.cfg.decode_latency, req);
    }

    /// Delivers a response to one of the engine's own memory fetches.
    ///
    /// Responses for unknown transactions — possible after a `RESET`
    /// dropped the in-flight state while replies were still crossing the
    /// NoC — are counted and discarded, as the RTL's decoder does.
    pub fn on_mem_resp(&mut self, now: Cycle, resp: MemResp, mem: &PhysMem) {
        let Some(f) = self.inflight.remove(&resp.id) else {
            self.stats.stale_responses.inc();
            return;
        };
        self.tracer.emit(now, || TraceEvent::EngineFetchFill {
            engine: self.trace_id,
            latency: now.since(f.issued),
        });
        match f.purpose {
            FetchPurpose::QueueFill { q, slot, .. } => {
                let _ = mem; // data travels in the response
                self.queues.queue_mut(q).fill(slot, resp.data);
            }
            FetchPurpose::LimaChunk { seq } => {
                if let Some(active) = &mut self.lima {
                    if let Some(c) = active.chunks.iter_mut().find(|c| c.seq == seq) {
                        c.ready = true;
                    }
                }
                // A reset may have dropped the active command; stale chunk
                // responses are ignored.
            }
        }
    }

    /// Pops the engine's next outbound memory request (`reply_to` is filled
    /// in by the host tile).
    pub fn pop_mem_request(&mut self) -> Option<MemReq> {
        self.out_mem.pop_front()
    }

    /// Pops a response (ack or data) ready for a core.
    pub fn pop_response(&mut self, now: Cycle) -> Option<OutboundResp> {
        self.out_resp.recv(now)
    }

    fn fresh_txid(&mut self) -> u64 {
        let id = self.next_txid;
        self.next_txid += 1;
        id
    }

    fn respond(&mut self, now: Cycle, dst: Coord, id: u64, data: u64) {
        // Record the completed response for replay: a core watchdog may
        // re-send the request if this response is lost on the NoC.
        let entry = self.seen.entry((dst, id)).or_insert(None);
        if entry.is_none() {
            *entry = Some(data);
            self.seen_order.push_back((dst, id));
            while self.seen_order.len() > SEEN_CAP {
                if let Some(old) = self.seen_order.pop_front() {
                    self.seen.remove(&old);
                }
            }
        }
        if let Some(f) = &mut self.ack_fault {
            if f.strike() {
                self.stats.acks_dropped.inc();
                self.tracer.emit(now, || TraceEvent::FaultInjected {
                    site: FaultSite::MmioAckDrop,
                });
                return;
            }
        }
        self.out_resp.send(
            now,
            self.cfg.respond_latency,
            OutboundResp {
                dst,
                resp: MemResp {
                    id,
                    data,
                    served_by: ServedBy::Device,
                },
                flits: MemResp::flits(false),
            },
        );
    }

    /// Engine-side translation. Returns the physical address, or `None`
    /// while the walker is busy or a fault is pending (the op retries).
    fn translate(&mut self, now: Cycle, mem: &PhysMem, va: VAddr) -> Option<PAddr> {
        if self.fault.is_some() {
            return None; // MMU stalled until the driver resolves the fault
        }
        if now < self.walker_free_at {
            // Walker busy: serve TLB hits without perturbing the hit/miss
            // counters (retries behind the walker are not new misses).
            return self
                .tlb
                .probe(va.page())
                .map(|e| e.frame.offset(va.page_offset()));
        }
        if let Some(e) = self.tlb.lookup(va.page()) {
            return Some(e.frame.offset(va.page_offset()));
        }
        let pt = self
            .page_table
            .expect("engine used before the driver programmed its MMU");
        self.walker_free_at = now.plus(walk_latency(self.cfg.ptw_read_latency));
        match pt.translate_checked(mem, va, false) {
            Ok(t) => {
                let frame = PAddr(t.paddr.0 & !(maple_mem::PAGE_SIZE - 1));
                self.tlb.insert(va.page(), frame, t.flags);
                // The result is architecturally available once the walk
                // completes; the op retries and hits the TLB then.
                None
            }
            Err(fault) => {
                self.stats.faults.inc();
                self.fault = Some(EngineFault { vaddr: va, fault });
                None
            }
        }
    }

    /// Advances the engine one cycle.
    pub fn tick(&mut self, now: Cycle, mem: &PhysMem) {
        self.watchdog_stage(now);
        self.dispatch_incoming(now);
        self.produce_stage(now, mem);
        self.prefetch_stage(now, mem);
        self.lima_stage(now, mem);
        self.consume_stage(now);
    }

    fn dispatch_incoming(&mut self, now: Cycle) {
        while let Some(req) = self.incoming.recv(now) {
            // Dedup against retried requests: a core watchdog re-sends an
            // MMIO operation (same transaction ID) when its response is
            // lost. Completed operations replay the recorded response;
            // still-in-flight ones drop the duplicate. MMIO operations are
            // not idempotent (a retried CONSUME must not pop twice), so
            // this cache is what makes core-side retry safe.
            let key = (req.reply_to, req.id);
            match self.seen.get(&key) {
                Some(Some(data)) => {
                    let data = *data;
                    self.stats.replayed_responses.inc();
                    self.respond(now, key.0, key.1, data);
                    continue;
                }
                Some(None) => {
                    self.stats.duplicate_requests.inc();
                    continue;
                }
                None => {
                    self.seen.insert(key, None);
                }
            }
            let offset = req.addr.page_offset();
            match req.kind {
                MemReqKind::Write { data, ack, .. } => {
                    debug_assert!(ack, "MMIO stores are synchronous");
                    let Some((op, q)) = decode_store(offset) else {
                        self.respond(now, req.reply_to, req.id, u64::MAX);
                        continue;
                    };
                    self.handle_store(now, req.reply_to, req.id, op, q, data);
                }
                MemReqKind::ReadWord { size } => {
                    let Some((op, q)) = decode_load(offset) else {
                        self.respond(now, req.reply_to, req.id, u64::MAX);
                        continue;
                    };
                    self.handle_load(now, req.reply_to, req.id, op, q, size);
                }
                other => {
                    debug_assert!(false, "unexpected MMIO request kind {other:?}");
                }
            }
        }
    }

    fn handle_store(
        &mut self,
        now: Cycle,
        dst: Coord,
        id: u64,
        op: StoreOp,
        q: u8,
        data: u64,
    ) {
        if usize::from(q) >= self.cfg.queues {
            // Decoded queue index beyond the configured range: reject with
            // an error response instead of indexing out of bounds.
            self.stats.bad_requests.inc();
            self.respond(now, dst, id, u64::MAX);
            return;
        }
        match op {
            StoreOp::Produce => {
                self.produce_pending[usize::from(q)].push_back(PendingProduce {
                    payload: ProducePayload::Data(data),
                    ack_dst: dst,
                    ack_id: id,
                });
            }
            StoreOp::ProducePtr => {
                self.produce_pending[usize::from(q)].push_back(PendingProduce {
                    payload: ProducePayload::Ptr {
                        va: VAddr(data),
                        coherent: false,
                    },
                    ack_dst: dst,
                    ack_id: id,
                });
            }
            StoreOp::ProducePtrLlc => {
                self.produce_pending[usize::from(q)].push_back(PendingProduce {
                    payload: ProducePayload::Ptr {
                        va: VAddr(data),
                        coherent: true,
                    },
                    ack_dst: dst,
                    ack_id: id,
                });
            }
            StoreOp::Prefetch => {
                self.prefetch_pending.push_back(PendingProduce {
                    payload: ProducePayload::Ptr {
                        va: VAddr(data),
                        coherent: true,
                    },
                    ack_dst: dst,
                    ack_id: id,
                });
            }
            StoreOp::ConfigQueue => {
                let (entries, entry_bytes) = decode_config_queue(data);
                let ok = self
                    .queues
                    .reconfigure(q, entries as usize, entry_bytes)
                    .is_ok();
                self.respond(now, dst, id, u64::from(ok));
            }
            StoreOp::LimaABase => {
                self.lima_regs.0 = VAddr(data);
                self.respond(now, dst, id, 0);
            }
            StoreOp::LimaBBase => {
                self.lima_regs.1 = VAddr(data);
                self.respond(now, dst, id, 0);
            }
            StoreOp::LimaRange => {
                let (lo, hi) = decode_lima_range(data);
                self.lima_regs.2 = lo;
                self.lima_regs.3 = hi;
                self.respond(now, dst, id, 0);
            }
            StoreOp::LimaGo => {
                let (speculative, b_elem, a_elem) = decode_lima_go(data);
                if !matches!(a_elem, 4 | 8) || !matches!(b_elem, 4 | 8) {
                    self.respond(now, dst, id, 0); // malformed: rejected
                    return;
                }
                let cmd = LimaCmd {
                    a_base: self.lima_regs.0,
                    b_base: self.lima_regs.1,
                    lo: self.lima_regs.2,
                    hi: self.lima_regs.3,
                    speculative,
                    queue: q,
                    a_elem,
                    b_elem,
                };
                if self.lima_cmds.len() < self.cfg.lima_cmd_depth {
                    self.lima_cmds.push_back(cmd);
                    self.respond(now, dst, id, 1);
                } else {
                    // Command queue full: buffer the launch and withhold
                    // the store ack (same no-overflow backpressure as the
                    // Produce pipeline).
                    self.lima_go_pending.push_back((dst, id, cmd));
                }
            }
            StoreOp::SetPtRoot => {
                self.page_table = Some(PageTable::from_root(PAddr(data)));
                self.respond(now, dst, id, 0);
            }
            StoreOp::TlbShootdown => {
                self.tlb.shootdown(VAddr(data).page());
                self.respond(now, dst, id, 0);
            }
            StoreOp::Reset => {
                self.reset();
                self.respond(now, dst, id, 0);
            }
            StoreOp::Close => {
                self.open_owner[usize::from(q)] = None;
                self.respond(now, dst, id, 0);
            }
            StoreOp::FaultResume => {
                self.fault = None;
                self.respond(now, dst, id, 0);
            }
            StoreOp::ProduceAmoAdd => {
                self.produce_pending[usize::from(q)].push_back(PendingProduce {
                    payload: ProducePayload::AmoPtr {
                        va: VAddr(data),
                        kind: maple_mem::phys::AmoKind::Add,
                    },
                    ack_dst: dst,
                    ack_id: id,
                });
            }
            StoreOp::ProduceAmoMin => {
                self.produce_pending[usize::from(q)].push_back(PendingProduce {
                    payload: ProducePayload::AmoPtr {
                        va: VAddr(data),
                        kind: maple_mem::phys::AmoKind::MinU,
                    },
                    ack_dst: dst,
                    ack_id: id,
                });
            }
            StoreOp::SetAmoOperand => {
                self.amo_operand[usize::from(q)] = data;
                self.respond(now, dst, id, 0);
            }
        }
    }

    fn handle_load(&mut self, now: Cycle, dst: Coord, id: u64, op: LoadOp, q: u8, size: u8) {
        if usize::from(q) >= self.cfg.queues {
            self.stats.bad_requests.inc();
            self.respond(now, dst, id, u64::MAX);
            return;
        }
        match op {
            LoadOp::Consume => {
                self.consume_pending[usize::from(q)].push_back(PendingConsume {
                    dst,
                    id,
                    size,
                });
            }
            LoadOp::Open => {
                let owner = &mut self.open_owner[usize::from(q)];
                let granted = match owner {
                    None => {
                        *owner = Some(dst);
                        true
                    }
                    Some(o) => *o == dst,
                };
                self.respond(now, dst, id, u64::from(granted));
            }
            LoadOp::StatProduced => {
                let v = self.queues.queue(q).produced.get();
                self.respond(now, dst, id, v);
            }
            LoadOp::StatConsumed => {
                let v = self.queues.queue(q).consumed.get();
                self.respond(now, dst, id, v);
            }
            LoadOp::StatOccupancy => {
                let v = self.queues.queue(q).occupancy() as u64;
                self.respond(now, dst, id, v);
            }
            LoadOp::StatMemFetches => {
                self.respond(now, dst, id, self.stats.mem_fetches.get());
            }
            LoadOp::StatTlbMisses => {
                self.respond(now, dst, id, self.tlb.misses());
            }
            LoadOp::FaultVa => {
                let va = self.fault.map_or(0, |f| f.vaddr.0);
                self.respond(now, dst, id, va);
            }
        }
    }

    /// Issues a non-coherent (or coherent) word fetch feeding queue `q`.
    fn issue_queue_fetch(&mut self, now: Cycle, q: u8, slot: Slot, paddr: PAddr, coherent: bool) {
        let size = self.queues.queue(q).entry_bytes();
        let id = self.fresh_txid();
        let req = MemReq {
            id,
            addr: paddr,
            kind: if coherent {
                MemReqKind::ReadWord { size }
            } else {
                MemReqKind::ReadWordDram { size }
            },
            reply_to: Coord::default(),
        };
        self.track_fetch(now, FetchPurpose::QueueFill { q, slot }, req);
    }

    /// Emits a queue-occupancy sample after a push or slot reservation.
    fn trace_queue_push(&self, now: Cycle, q: u8) {
        self.tracer.emit(now, || TraceEvent::QueuePush {
            engine: self.trace_id,
            queue: usize::from(q),
            occupancy: self.queues.queue(q).occupancy(),
        });
    }

    /// Records an outstanding fetch (for the watchdog) and issues it.
    fn track_fetch(&mut self, now: Cycle, purpose: FetchPurpose, req: MemReq) {
        self.tracer.emit(now, || TraceEvent::EngineFetchIssue {
            engine: self.trace_id,
            addr: req.addr.0,
        });
        self.inflight.insert(
            req.id,
            InflightFetch {
                purpose,
                req,
                issued: now,
                retries: 0,
            },
        );
        self.stats.mem_fetches.inc();
        self.out_mem.push_back(req);
    }

    /// Re-issues overdue fetches with exponential backoff; a fetch that
    /// exhausts its retries (or cannot be retried safely, e.g. an atomic
    /// that would double-apply) poisons the engine.
    fn watchdog_stage(&mut self, now: Cycle) {
        let Some(w) = self.watchdog else {
            return;
        };
        if self.inflight.is_empty() {
            return;
        }
        let mut overdue: Vec<u64> = self
            .inflight
            .iter()
            .filter(|(_, f)| now >= w.deadline(f.issued, f.retries))
            .map(|(&id, _)| id)
            .collect();
        if overdue.is_empty() {
            return;
        }
        // HashMap iteration order is nondeterministic; sorted ids keep
        // seed replay exact.
        overdue.sort_unstable();
        for id in overdue {
            self.stats.fetch_timeouts.inc();
            let Some(f) = self.inflight.get_mut(&id) else {
                continue;
            };
            let retryable = !matches!(f.req.kind, MemReqKind::Amo { .. });
            if !retryable || f.retries >= w.max_retries {
                self.inflight.remove(&id);
                self.stats.poisoned_fetches.inc();
                self.poisoned = true;
            } else {
                f.retries += 1;
                f.issued = now;
                let req = f.req;
                self.stats.fetch_retries.inc();
                self.tracer.emit(now, || TraceEvent::FaultRecovered {
                    site: FaultSite::FetchRetry,
                });
                self.out_mem.push_back(req);
            }
        }
    }

    fn produce_stage(&mut self, now: Cycle, mem: &PhysMem) {
        for qi in 0..self.cfg.queues {
            let Some(head) = self.produce_pending[qi].front().copied() else {
                continue;
            };
            let q = qi as u8;
            if self.queues.queue(q).is_full() {
                self.stats.produce_stalls.inc();
                continue; // buffered; only this queue stalls
            }
            match head.payload {
                ProducePayload::Data(v) => {
                    self.queues
                        .queue_mut(q)
                        .push(v)
                        .expect("checked not full");
                    self.trace_queue_push(now, q);
                    self.produce_pending[qi].pop_front();
                    self.respond(now, head.ack_dst, head.ack_id, 0);
                }
                ProducePayload::Ptr { va, coherent } => {
                    let Some(paddr) = self.translate(now, mem, va) else {
                        continue; // walker busy or fault pending: retry
                    };
                    let slot = self
                        .queues
                        .queue_mut(q)
                        .reserve()
                        .expect("checked not full");
                    self.trace_queue_push(now, q);
                    self.issue_queue_fetch(now, q, slot, paddr, coherent);
                    self.produce_pending[qi].pop_front();
                    // Store acked as soon as the produce is accepted
                    // (paper step 4): the Access thread moves on while the
                    // fetch is in flight.
                    self.respond(now, head.ack_dst, head.ack_id, 0);
                }
                ProducePayload::AmoPtr { va, kind } => {
                    let Some(paddr) = self.translate(now, mem, va) else {
                        continue;
                    };
                    let slot = self
                        .queues
                        .queue_mut(q)
                        .reserve()
                        .expect("checked not full");
                    self.trace_queue_push(now, q);
                    let size = self.queues.queue(q).entry_bytes();
                    let txid = self.fresh_txid();
                    let req = MemReq {
                        id: txid,
                        addr: paddr,
                        kind: MemReqKind::Amo {
                            kind,
                            size,
                            operand: self.amo_operand[qi],
                        },
                        reply_to: Coord::default(),
                    };
                    self.track_fetch(now, FetchPurpose::QueueFill { q, slot }, req);
                    self.produce_pending[qi].pop_front();
                    self.respond(now, head.ack_dst, head.ack_id, 0);
                }
            }
        }
    }

    fn prefetch_stage(&mut self, now: Cycle, mem: &PhysMem) {
        let Some(head) = self.prefetch_pending.front().copied() else {
            return;
        };
        let ProducePayload::Ptr { va, .. } = head.payload else {
            unreachable!("prefetch ops always carry pointers");
        };
        // Speculative: a fault drops the prefetch instead of interrupting.
        if self.fault.is_some() {
            return;
        }
        // Mirror `translate`: while the walker is busy, serve TLB hits
        // through the non-mutating probe so retries queued behind the
        // walker do not count as fresh misses every cycle.
        let hit = if now < self.walker_free_at {
            self.tlb.probe(va.page())
        } else {
            self.tlb.lookup(va.page())
        };
        if let Some(e) = hit {
            let paddr = e.frame.offset(va.page_offset());
            self.stats.llc_prefetches.inc();
            let id = self.fresh_txid();
            self.out_mem.push_back(MemReq {
                id,
                addr: paddr,
                kind: MemReqKind::PrefetchLine,
                reply_to: Coord::default(),
            });
            self.prefetch_pending.pop_front();
            self.respond(now, head.ack_dst, head.ack_id, 0);
            return;
        }
        if now < self.walker_free_at {
            return;
        }
        let pt = self.page_table.expect("engine MMU unprogrammed");
        self.walker_free_at = now.plus(walk_latency(self.cfg.ptw_read_latency));
        match pt.translate_checked(mem, va, false) {
            Ok(t) => {
                let frame = PAddr(t.paddr.0 & !(maple_mem::PAGE_SIZE - 1));
                self.tlb.insert(va.page(), frame, t.flags);
            }
            Err(_) => {
                // Speculative prefetch to an unmapped page: drop silently.
                self.prefetch_pending.pop_front();
                self.respond(now, head.ack_dst, head.ack_id, 0);
            }
        }
    }

    fn lima_stage(&mut self, now: Cycle, mem: &PhysMem) {
        // Drain buffered launches as command-queue slots free up, acking
        // the stalled stores.
        while self.lima_cmds.len() < self.cfg.lima_cmd_depth {
            let Some((dst, id, cmd)) = self.lima_go_pending.pop_front() else {
                break;
            };
            self.lima_cmds.push_back(cmd);
            self.respond(now, dst, id, 1);
        }
        if self.lima.is_none() {
            if let Some(cmd) = self.lima_cmds.pop_front() {
                self.lima = Some(LimaActive {
                    next_fetch: cmd.lo,
                    chunks: VecDeque::new(),
                    head_pos: 0,
                    next_chunk_seq: 0,
                    cmd,
                });
            }
        }
        let Some(mut active) = self.lima.take() else {
            return;
        };

        // Fetch stage: stream B in 64-byte chunks.
        while active.next_fetch < active.cmd.hi
            && active.chunks.len() < self.cfg.lima_chunks_inflight
        {
            let elem = u64::from(active.cmd.b_elem);
            let va = active.cmd.b_base.offset(u64::from(active.next_fetch) * elem);
            let Some(paddr) = self.translate(now, mem, va) else {
                break; // walker busy or fault: resume later
            };
            // Elements until the end of this 64-byte line (and this page).
            let line_room = (LINE_SIZE - paddr.line_offset()) / elem;
            let count = u64::from(active.cmd.hi - active.next_fetch)
                .min(line_room)
                .max(1) as u32;
            let seq = active.next_chunk_seq;
            active.next_chunk_seq += 1;
            let id = self.fresh_txid();
            let req = MemReq {
                id,
                addr: paddr.line_base(),
                kind: MemReqKind::ReadLineDram,
                reply_to: Coord::default(),
            };
            self.track_fetch(now, FetchPurpose::LimaChunk { seq }, req);
            active.chunks.push_back(LimaChunkRec {
                seq,
                count,
                paddr,
                ready: false,
            });
            active.next_fetch += count;
        }

        // Process stage: walk ready head chunks, feeding indirect fetches.
        let mut budget = self.cfg.lima_rate;
        while budget > 0 {
            let Some(head) = active.chunks.front().copied() else {
                break;
            };
            if !head.ready {
                break;
            }
            if active.head_pos >= head.count {
                active.chunks.pop_front();
                active.head_pos = 0;
                continue;
            }
            let b_elem = u64::from(head_elem(&active));
            let b_paddr = head.paddr.offset(u64::from(active.head_pos) * b_elem);
            let b_value = mem.read_uint(b_paddr, active.cmd.b_elem);
            let target = active
                .cmd
                .a_base
                .offset(b_value.wrapping_mul(u64::from(active.cmd.a_elem)));
            if active.cmd.speculative {
                // Speculative: prefetch A[b] into the LLC.
                let Some(paddr) = self.translate(now, mem, target) else {
                    if self.fault.is_some() {
                        // LIMA prefetches are speculative: skip the element.
                        self.fault = None;
                        active.head_pos += 1;
                        continue;
                    }
                    break;
                };
                self.stats.llc_prefetches.inc();
                let id = self.fresh_txid();
                self.out_mem.push_back(MemReq {
                    id,
                    addr: paddr,
                    kind: MemReqKind::PrefetchLine,
                    reply_to: Coord::default(),
                });
                active.head_pos += 1;
            } else {
                // Non-speculative: pointer-produce into the target queue.
                let q = active.cmd.queue;
                if self.queues.queue(q).is_full() {
                    self.stats.produce_stalls.inc();
                    break;
                }
                let Some(paddr) = self.translate(now, mem, target) else {
                    break; // fault raised or walker busy: resume later
                };
                let slot = self
                    .queues
                    .queue_mut(q)
                    .reserve()
                    .expect("checked not full");
                self.trace_queue_push(now, q);
                self.issue_queue_fetch(now, q, slot, paddr, false);
                active.head_pos += 1;
            }
            budget -= 1;
        }

        // Completed?
        if active.next_fetch >= active.cmd.hi && active.chunks.is_empty() {
            self.stats.lima_completed.inc();
        } else {
            self.lima = Some(active);
        }
    }

    fn consume_stage(&mut self, now: Cycle) {
        for qi in 0..self.cfg.queues {
            let Some(head) = self.consume_pending[qi].front().copied() else {
                continue;
            };
            let q = qi as u8;
            let entry_bytes = self.queues.queue(q).entry_bytes();
            let n = (usize::from(head.size) / usize::from(entry_bytes)).max(1);
            if let Some(data) = self.queues.queue_mut(q).pop_packed(n) {
                self.tracer.emit(now, || TraceEvent::QueuePop {
                    engine: self.trace_id,
                    queue: qi,
                    occupancy: self.queues.queue(q).occupancy(),
                });
                self.consume_pending[qi].pop_front();
                self.respond(now, head.dst, head.id, data);
            } else {
                self.stats.consume_stalls.inc();
                // Buffered (no polling) until data arrives.
            }
        }
    }

    /// Earliest cycle at or after `now` at which a translation attempt for
    /// `va` could do something observable: immediately on a TLB hit or when
    /// the walker is free (a walk start mutates the TLB and the walker);
    /// never while a fault blocks the MMU (the unblocking event — driver
    /// fault service or an MMIO `FAULT_RESUME` — is visible elsewhere).
    fn translate_event(&self, now: Cycle, va: VAddr) -> Option<Cycle> {
        if self.fault.is_some() {
            return None;
        }
        if now < self.walker_free_at {
            if self.tlb.probe(va.page()).is_some() {
                Some(now) // busy-walker probe hit: the op proceeds this cycle
            } else {
                Some(self.walker_free_at) // retries until then are pure no-ops
            }
        } else {
            Some(now)
        }
    }

    /// Earliest cycle at or after `now` at which ticking the engine could
    /// have an observable effect, for the event-horizon scheduler.
    ///
    /// Mirrors the pipeline stages of [`Engine::tick`] clause by clause.
    /// The contract is *conservatively early, never late*: a reported cycle
    /// where the dense loop would in fact do nothing only costs a wasted
    /// tick, while a missed earlier mutation would diverge from the dense
    /// reference. Heads that stall with per-cycle counter increments
    /// (produce against a full queue, consume against an empty one) are
    /// deliberately **not** events — [`Engine::skip`] accounts them in bulk.
    #[must_use]
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut h = maple_sim::Horizon::IDLE;
        // Outbound traffic the host tile must drain.
        if !self.out_mem.is_empty() {
            h.at(now);
        }
        h.observe(self.out_resp.next_deadline().map(|d| d.max(now)));
        // Incoming MMIO operations finish decode at their deadline.
        h.observe(self.incoming.next_deadline().map(|d| d.max(now)));
        // Watchdog: the earliest fetch deadline (re-issue or poison).
        if let Some(w) = self.watchdog {
            for f in self.inflight.values() {
                h.at(w.deadline(f.issued, f.retries).max(now));
            }
        }
        // Produce pipeline: a head behind a free slot acts now (immediate
        // data) or when its translation can act. Full queues are stalls.
        for qi in 0..self.cfg.queues {
            let Some(head) = self.produce_pending[qi].front() else {
                continue;
            };
            if self.queues.queue(qi as u8).is_full() {
                continue; // per-cycle produce_stalls: bulk-counted by skip()
            }
            match head.payload {
                ProducePayload::Data(_) => h.at(now),
                ProducePayload::Ptr { va, .. } | ProducePayload::AmoPtr { va, .. } => {
                    h.observe(self.translate_event(now, va));
                }
            }
        }
        // Prefetch pipeline head (fault-blocked heads sit silently).
        if let Some(head) = self.prefetch_pending.front() {
            if let ProducePayload::Ptr { va, .. } = head.payload {
                h.observe(self.translate_event(now, va));
            }
        }
        // LIMA: buffered launches drain when the command queue has room;
        // an idle unit activates a queued command the next tick.
        if !self.lima_go_pending.is_empty() && self.lima_cmds.len() < self.cfg.lima_cmd_depth {
            h.at(now);
        }
        if self.lima.is_none() && !self.lima_cmds.is_empty() {
            h.at(now);
        }
        if let Some(active) = &self.lima {
            // Fetch stage: room for another B chunk.
            if active.next_fetch < active.cmd.hi
                && active.chunks.len() < self.cfg.lima_chunks_inflight
            {
                let elem = u64::from(active.cmd.b_elem);
                let va = active.cmd.b_base.offset(u64::from(active.next_fetch) * elem);
                h.observe(self.translate_event(now, va));
            }
            // Process stage: a ready head chunk. The indirect target address
            // lives in memory (unavailable here), so report `now`
            // conservatively — except for the two cases the dense loop
            // provably sits idle on: a non-speculative produce against a
            // full queue (bulk-counted by skip()) or behind a pending fault.
            if let Some(chunk) = active.chunks.front() {
                if chunk.ready {
                    if active.head_pos >= chunk.count {
                        h.at(now); // the exhausted chunk retires this cycle
                    } else if active.cmd.speculative {
                        h.at(now); // prefetches even consume pending faults
                    } else if !self.queues.queue(active.cmd.queue).is_full()
                        && self.fault.is_none()
                    {
                        h.at(now);
                    }
                }
            }
        }
        // Consume pipeline: a head with enough packed data pops this cycle
        // (empty-queue heads are stalls, bulk-counted by skip()).
        for qi in 0..self.cfg.queues {
            let Some(head) = self.consume_pending[qi].front() else {
                continue;
            };
            let q = self.queues.queue(qi as u8);
            let n = (usize::from(head.size) / usize::from(q.entry_bytes())).max(1);
            if q.ready_at_head() >= n {
                h.at(now);
            }
        }
        h.earliest()
    }

    /// Applies the per-cycle stall accounting the dense loop would have
    /// performed over `cycles` skipped quiescent cycles.
    ///
    /// Must mirror exactly the counter increments [`Engine::tick`] makes on
    /// a cycle where no head can progress: one `produce_stalls` per queue
    /// whose produce head faces a full queue, one more if LIMA's
    /// non-speculative produce head is blocked on a full queue, and one
    /// `consume_stalls` per queue whose consume head lacks packed data.
    pub fn skip(&mut self, cycles: u64) {
        for qi in 0..self.cfg.queues {
            if !self.produce_pending[qi].is_empty() && self.queues.queue(qi as u8).is_full() {
                self.stats.produce_stalls.add(cycles);
            }
        }
        if let Some(active) = &self.lima {
            if let Some(chunk) = active.chunks.front() {
                if chunk.ready
                    && active.head_pos < chunk.count
                    && !active.cmd.speculative
                    && self.queues.queue(active.cmd.queue).is_full()
                {
                    self.stats.produce_stalls.add(cycles);
                }
            }
        }
        for qi in 0..self.cfg.queues {
            let Some(head) = self.consume_pending[qi].front() else {
                continue;
            };
            let q = self.queues.queue(qi as u8);
            let n = (usize::from(head.size) / usize::from(q.entry_bytes())).max(1);
            if q.ready_at_head() < n {
                self.stats.consume_stalls.add(cycles);
            }
        }
    }
}

impl maple_sim::Clocked for Engine {
    type Ctx<'a> = &'a PhysMem;

    fn tick(&mut self, now: Cycle, mem: &PhysMem) {
        Engine::tick(self, now, mem);
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        Engine::next_event(self, now)
    }
}

fn head_elem(active: &LimaActive) -> u8 {
    active.cmd.b_elem
}
