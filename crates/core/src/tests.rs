//! Engine unit tests: a mini-bench wires one engine to a shared L2 and
//! plays the role of the cores by injecting raw MMIO requests.

use super::engine::{Engine, MapleConfig};
use crate::mmio::{
    self, config_queue_payload, lima_go_payload, lima_range_payload, load_offset, store_offset,
    LoadOp, StoreOp,
};
use maple_mem::dram::DramConfig;
use maple_mem::l2::{L2Config, SharedL2};
use maple_mem::msg::{MemReq, MemReqKind};
use maple_mem::phys::{PAddr, PhysMem};
use maple_noc::Coord;
use maple_sim::Cycle;
use maple_vm::page_table::{FrameAllocator, PageFlags, PageTable};
use maple_vm::VAddr;

/// The engine's MMIO page physical base in these tests.
const ENGINE_PAGE: u64 = 0xF000_0000;

struct Bench {
    mem: PhysMem,
    frames: FrameAllocator,
    pt: PageTable,
    engine: Engine,
    l2: SharedL2,
    now: Cycle,
    next_id: u64,
    /// Responses the engine sent back to "cores", keyed by request id.
    acks: Vec<(u64, u64)>,
}

impl Bench {
    fn new(cfg: MapleConfig) -> Self {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(PAddr(0x10_0000), 64 << 20);
        let pt = PageTable::new(&mut mem, &mut frames);
        let mut engine = Engine::new(cfg);
        engine.set_page_table(pt);
        Bench {
            mem,
            frames,
            pt,
            engine,
            l2: SharedL2::new(L2Config::default(), DramConfig::default()),
            now: Cycle::ZERO,
            next_id: 0,
            acks: Vec::new(),
        }
    }

    /// Maps `pages` pages of data at `va_base`, returns the phys base of
    /// the first page.
    fn map(&mut self, va_base: u64, pages: u64) -> PAddr {
        let mut first = None;
        for i in 0..pages {
            let frame = self.frames.alloc(&mut self.mem);
            first.get_or_insert(frame);
            self.pt.map(
                &mut self.mem,
                &mut self.frames,
                VAddr(va_base + i * maple_mem::PAGE_SIZE),
                frame,
                PageFlags::rw(),
            );
        }
        first.unwrap()
    }

    fn store(&mut self, op: StoreOp, q: u8, data: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.engine.accept(
            self.now,
            MemReq {
                id,
                addr: PAddr(ENGINE_PAGE + store_offset(op, q)),
                kind: MemReqKind::Write {
                    size: 8,
                    data,
                    ack: true,
                },
                reply_to: Coord::new(0, 0),
            },
        );
        id
    }

    fn load(&mut self, op: LoadOp, q: u8, size: u8) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.engine.accept(
            self.now,
            MemReq {
                id,
                addr: PAddr(ENGINE_PAGE + load_offset(op, q)),
                kind: MemReqKind::ReadWord { size },
                reply_to: Coord::new(0, 0),
            },
        );
        id
    }

    /// Runs `cycles` cycles, pumping engine ↔ L2 traffic with a 3-cycle
    /// wire delay each way (collapsed into the L2 stage for simplicity).
    fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.engine.tick(self.now, &self.mem);
            while let Some(req) = self.engine.pop_mem_request() {
                self.l2.accept(self.now, req);
            }
            self.l2.tick(self.now, &mut self.mem);
            while let Some(resp) = self.l2.pop_outgoing() {
                self.engine.on_mem_resp(self.now, resp.resp, &self.mem);
            }
            while let Some(r) = self.engine.pop_response(self.now) {
                self.acks.push((r.resp.id, r.resp.data));
            }
            self.now += 1;
        }
    }

    fn ack_of(&self, id: u64) -> Option<u64> {
        self.acks.iter().find(|(i, _)| *i == id).map(|(_, d)| *d)
    }

    /// Runs until `id` is answered (or panics after `max`).
    fn run_until_ack(&mut self, id: u64, max: u64) -> u64 {
        for _ in 0..max {
            if let Some(d) = self.ack_of(id) {
                return d;
            }
            self.run(1);
        }
        panic!("no response for request {id} within {max} cycles");
    }
}

#[test]
fn produce_then_consume_roundtrip() {
    let mut b = Bench::new(MapleConfig::default());
    let p = b.store(StoreOp::Produce, 0, 0x1234);
    b.run_until_ack(p, 100);
    let c = b.load(LoadOp::Consume, 0, 4);
    let data = b.run_until_ack(c, 100);
    assert_eq!(data, 0x1234);
    assert_eq!(b.engine.queue(0).consumed.get(), 1);
}

#[test]
fn consume_blocks_until_data_arrives() {
    let mut b = Bench::new(MapleConfig::default());
    let c = b.load(LoadOp::Consume, 0, 4);
    b.run(50);
    assert_eq!(b.ack_of(c), None, "consume buffered while queue empty");
    let p = b.store(StoreOp::Produce, 0, 77);
    b.run_until_ack(p, 100);
    assert_eq!(b.run_until_ack(c, 100), 77);
    assert!(b.engine.stats().consume_stalls.get() > 0);
}

#[test]
fn produce_ptr_fetches_from_memory_in_order() {
    let mut b = Bench::new(MapleConfig::default());
    let pa = b.map(0x4000_0000, 1);
    for i in 0..4u64 {
        b.mem.write_u32(pa.offset(i * 4), 100 + i as u32);
    }
    // Produce pointers in order; engine fetches them (DRAM latency) and
    // the consumes must observe program order.
    for i in 0..4u64 {
        let id = b.store(StoreOp::ProducePtr, 0, 0x4000_0000 + i * 4);
        b.run_until_ack(id, 5000);
    }
    for i in 0..4u64 {
        let c = b.load(LoadOp::Consume, 0, 4);
        assert_eq!(b.run_until_ack(c, 5000), 100 + i, "program order kept");
    }
    assert!(b.engine.stats().mem_fetches.get() >= 4);
}

#[test]
fn produce_ack_does_not_wait_for_dram() {
    // The store is acknowledged when the produce is accepted (slot
    // reserved), long before the 300-cycle DRAM fetch completes.
    let mut b = Bench::new(MapleConfig::default());
    b.map(0x4000_0000, 1);
    let id = b.store(StoreOp::ProducePtr, 0, 0x4000_0000);
    // First touch pays decode + PTW (~90) but never the DRAM 300.
    let mut acked_at = None;
    for _ in 0..250 {
        b.run(1);
        if b.ack_of(id).is_some() {
            acked_at = Some(b.now);
            break;
        }
    }
    let acked_at = acked_at.expect("ack must arrive before DRAM latency");
    assert!(acked_at.0 < 250, "acked at {acked_at}");
}

#[test]
fn full_queue_withholds_ack_until_drained() {
    let cfg = MapleConfig::default(); // 32 entries
    let mut b = Bench::new(cfg);
    let mut ids = Vec::new();
    for i in 0..33u64 {
        ids.push(b.store(StoreOp::Produce, 0, i));
    }
    b.run(200);
    for id in &ids[..32] {
        assert!(b.ack_of(*id).is_some(), "first 32 fit");
    }
    assert_eq!(b.ack_of(ids[32]), None, "33rd buffered: backpressure");
    // Other queues are unaffected (deadlock avoidance).
    let other = b.store(StoreOp::Produce, 1, 9);
    b.run_until_ack(other, 100);
    // Draining one entry releases the buffered produce.
    let c = b.load(LoadOp::Consume, 0, 4);
    b.run_until_ack(c, 100);
    b.run_until_ack(ids[32], 100);
}

#[test]
fn open_close_exclusivity() {
    let mut b = Bench::new(MapleConfig::default());
    let o1 = b.load(LoadOp::Open, 3, 8);
    assert_eq!(b.run_until_ack(o1, 100), 1, "first open granted");
    // Same requester re-opens fine (same coord in this bench).
    let o2 = b.load(LoadOp::Open, 3, 8);
    assert_eq!(b.run_until_ack(o2, 100), 1);
    let cl = b.store(StoreOp::Close, 3, 0);
    b.run_until_ack(cl, 100);
    let o3 = b.load(LoadOp::Open, 3, 8);
    assert_eq!(b.run_until_ack(o3, 100), 1, "open after close granted");
}

#[test]
fn config_queue_resizes_and_rejects_overflow() {
    let mut b = Bench::new(MapleConfig::default());
    // Same footprint, wider entries: 16 × 8 B replaces 32 × 4 B.
    let ok = b.store(StoreOp::ConfigQueue, 0, config_queue_payload(16, 8));
    assert_eq!(b.run_until_ack(ok, 100), 1);
    // Growing beyond the 1 KB scratchpad budget is refused.
    let too_big = b.store(StoreOp::ConfigQueue, 0, config_queue_payload(64, 8));
    assert_eq!(b.run_until_ack(too_big, 100), 0);
    // The 8-byte queue round-trips 64-bit values whole.
    let p = b.store(StoreOp::Produce, 0, u64::MAX - 1);
    b.run_until_ack(p, 100);
    let c = b.load(LoadOp::Consume, 0, 8);
    assert_eq!(b.run_until_ack(c, 100), u64::MAX - 1);
}

#[test]
fn stat_reads_report_counters() {
    let mut b = Bench::new(MapleConfig::default());
    let p = b.store(StoreOp::Produce, 2, 5);
    b.run_until_ack(p, 100);
    let s = b.load(LoadOp::StatProduced, 2, 8);
    assert_eq!(b.run_until_ack(s, 100), 1);
    let o = b.load(LoadOp::StatOccupancy, 2, 8);
    assert_eq!(b.run_until_ack(o, 100), 1);
    let c = b.load(LoadOp::StatConsumed, 2, 8);
    assert_eq!(b.run_until_ack(c, 100), 0);
}

#[test]
fn wide_consume_packs_two_entries() {
    let mut b = Bench::new(MapleConfig::default()); // 4-byte entries
    for v in [0xAAAA_AAAAu64, 0xBBBB_BBBB] {
        let id = b.store(StoreOp::Produce, 0, v);
        b.run_until_ack(id, 100);
    }
    let c = b.load(LoadOp::Consume, 0, 8);
    let data = b.run_until_ack(c, 100);
    assert_eq!(data, 0xBBBB_BBBB_AAAA_AAAA, "8B load pops two 4B entries");
}

#[test]
fn engine_page_fault_raises_and_resumes() {
    let mut b = Bench::new(MapleConfig::default());
    // Produce a pointer into unmapped space.
    let id = b.store(StoreOp::ProducePtr, 0, 0xDEAD_0000);
    b.run(400);
    assert_eq!(b.ack_of(id), None, "op stalled on the fault");
    let fault = b.engine.fault().expect("fault raised");
    assert_eq!(fault.vaddr, VAddr(0xDEAD_0000));
    // Driver reads the faulting VA through the config pipeline.
    let fv = b.load(LoadOp::FaultVa, 0, 8);
    assert_eq!(b.run_until_ack(fv, 100), 0xDEAD_0000);
    // Driver maps the page and resumes.
    let pa = b.map(0xDEAD_0000, 1);
    b.mem.write_u32(pa, 321);
    let fr = b.store(StoreOp::FaultResume, 0, 0);
    b.run_until_ack(fr, 100);
    b.run_until_ack(id, 1000);
    let c = b.load(LoadOp::Consume, 0, 4);
    assert_eq!(b.run_until_ack(c, 5000), 321);
}

#[test]
fn tlb_shootdown_forces_rewalk() {
    let mut b = Bench::new(MapleConfig::default());
    let pa1 = b.map(0x4000_0000, 1);
    b.mem.write_u32(pa1, 1);
    let id = b.store(StoreOp::ProducePtr, 0, 0x4000_0000);
    b.run_until_ack(id, 1000);
    let misses_before = b.engine.tlb_misses();
    // Shoot the page down, then remap it elsewhere.
    let sd = b.store(StoreOp::TlbShootdown, 0, 0x4000_0000);
    b.run_until_ack(sd, 100);
    let frame2 = b.frames.alloc(&mut b.mem);
    b.mem.write_u32(frame2, 2);
    b.pt
        .map(&mut b.mem, &mut b.frames, VAddr(0x4000_0000), frame2, PageFlags::rw());
    let id2 = b.store(StoreOp::ProducePtr, 0, 0x4000_0000);
    b.run_until_ack(id2, 1000);
    assert!(b.engine.tlb_misses() > misses_before, "re-walk happened");
    // Drain both entries; the second must come from the NEW frame.
    let c1 = b.load(LoadOp::Consume, 0, 4);
    assert_eq!(b.run_until_ack(c1, 5000), 1);
    let c2 = b.load(LoadOp::Consume, 0, 4);
    assert_eq!(b.run_until_ack(c2, 5000), 2, "stale translation prevented");
}

#[test]
fn lima_nonspeculative_fills_queue_with_gathered_values() {
    let mut b = Bench::new(MapleConfig::default());
    // A is u32 data at 0x5000_0000; B is u32 indices at 0x6000_0000.
    let pa_a = b.map(0x5000_0000, 4);
    let pa_b = b.map(0x6000_0000, 1);
    let n = 40u64;
    for i in 0..1024u64 {
        b.mem.write_u32(pa_a.offset(i * 4), (1000 + i) as u32);
    }
    let idx: Vec<u32> = (0..n).map(|i| ((i * 37) % 1024) as u32).collect();
    for (i, &v) in idx.iter().enumerate() {
        b.mem.write_u32(pa_b.offset(i as u64 * 4), v);
    }
    // Configure and launch LIMA: gather A[B[0..n]] into queue 5.
    for (op, val) in [
        (StoreOp::LimaABase, 0x5000_0000u64),
        (StoreOp::LimaBBase, 0x6000_0000),
        (StoreOp::LimaRange, lima_range_payload(0, n as u32)),
    ] {
        let id = b.store(op, 5, val);
        b.run_until_ack(id, 100);
    }
    let go = b.store(StoreOp::LimaGo, 5, lima_go_payload(false, 4, 4));
    assert_eq!(b.run_until_ack(go, 100), 1, "command accepted");
    // Consume all n values: they must equal A[B[i]] in order.
    for (i, &bi) in idx.iter().enumerate() {
        let c = b.load(LoadOp::Consume, 5, 4);
        let v = b.run_until_ack(c, 20_000);
        assert_eq!(v, 1000 + u64::from(bi), "element {i}");
    }
    assert_eq!(b.engine.stats().lima_completed.get(), 1);
}

#[test]
fn lima_speculative_prefetches_into_llc() {
    let mut b = Bench::new(MapleConfig::default());
    let pa_a = b.map(0x5000_0000, 4);
    let pa_b = b.map(0x6000_0000, 1);
    let n = 16u64;
    for i in 0..n {
        b.mem.write_u32(pa_b.offset(i * 4), (i * 16) as u32); // distinct lines
    }
    let _ = pa_a;
    for (op, val) in [
        (StoreOp::LimaABase, 0x5000_0000u64),
        (StoreOp::LimaBBase, 0x6000_0000),
        (StoreOp::LimaRange, lima_range_payload(0, n as u32)),
    ] {
        let id = b.store(op, 0, val);
        b.run_until_ack(id, 100);
    }
    let go = b.store(StoreOp::LimaGo, 0, lima_go_payload(true, 4, 4));
    b.run_until_ack(go, 100);
    b.run(5000);
    assert!(
        b.engine.stats().llc_prefetches.get() >= n,
        "speculative LIMA issued {} LLC prefetches",
        b.engine.stats().llc_prefetches.get()
    );
    // The prefetched A lines are now resident in the L2.
    let a_pa = b.pt.translate(&b.mem, VAddr(0x5000_0000)).unwrap().paddr;
    assert!(b.l2.contains_line(a_pa));
    assert!(b.engine.is_idle());
}

#[test]
fn reset_clears_queues_but_keeps_mmu() {
    let mut b = Bench::new(MapleConfig::default());
    let p = b.store(StoreOp::Produce, 0, 1);
    b.run_until_ack(p, 100);
    let r = b.store(StoreOp::Reset, 0, 0);
    b.run_until_ack(r, 100);
    assert!(b.engine.queue(0).is_empty());
    // Engine still translates (page table kept across reset).
    b.map(0x7000_0000, 1);
    let p2 = b.store(StoreOp::ProducePtr, 0, 0x7000_0000);
    b.run_until_ack(p2, 1000);
}

#[test]
fn unknown_opcode_answers_all_ones() {
    let mut b = Bench::new(MapleConfig::default());
    let id = b.next_id;
    b.next_id += 1;
    b.engine.accept(
        b.now,
        MemReq {
            id,
            addr: PAddr(ENGINE_PAGE + (63 << 3)),
            kind: MemReqKind::ReadWord { size: 8 },
            reply_to: Coord::new(0, 0),
        },
    );
    assert_eq!(b.run_until_ack(id, 100), u64::MAX);
}

#[test]
fn prefetch_op_installs_line_in_llc() {
    // The API's speculative PREFETCH(ptr): one store, line lands in L2,
    // nothing enqueued.
    let mut b = Bench::new(MapleConfig::default());
    b.map(0x4000_0000, 1);
    let id = b.store(StoreOp::Prefetch, 0, 0x4000_0040);
    b.run_until_ack(id, 1000);
    b.run(1000);
    let pa = b
        .pt
        .translate(&b.mem, VAddr(0x4000_0040))
        .unwrap()
        .paddr;
    assert!(b.l2.contains_line(pa), "prefetched line resident in L2");
    assert!(b.engine.queue(0).is_empty(), "prefetch never touches queues");
    assert_eq!(b.engine.stats().llc_prefetches.get(), 1);
}

#[test]
fn prefetch_to_unmapped_page_is_dropped_silently() {
    let mut b = Bench::new(MapleConfig::default());
    let id = b.store(StoreOp::Prefetch, 0, 0xBAD0_0000);
    // Speculative: acked and dropped, no fault raised.
    b.run_until_ack(id, 2000);
    b.run(500);
    assert!(b.engine.fault().is_none(), "speculative prefetch never faults");
    assert_eq!(b.engine.stats().llc_prefetches.get(), 0);
    assert!(b.engine.is_idle());
}

#[test]
fn amo_produce_extension_updates_memory_and_enqueues_old_values() {
    let mut b = Bench::new(MapleConfig::default());
    let pa = b.map(0x4000_0000, 1);
    b.mem.write_u32(pa, 100);
    // operand = 7; two fetch-adds on the same counter.
    let op = b.store(StoreOp::SetAmoOperand, 0, 7);
    b.run_until_ack(op, 100);
    for _ in 0..2 {
        let id = b.store(StoreOp::ProduceAmoAdd, 0, 0x4000_0000);
        b.run_until_ack(id, 5000);
    }
    let c1 = b.load(LoadOp::Consume, 0, 4);
    assert_eq!(b.run_until_ack(c1, 5000), 100, "first old value");
    let c2 = b.load(LoadOp::Consume, 0, 4);
    assert_eq!(b.run_until_ack(c2, 5000), 107, "second old value");
    assert_eq!(b.mem.read_u32(pa), 114, "both adds applied atomically");
}

#[test]
fn amo_produce_min_returns_old_and_clamps() {
    let mut b = Bench::new(MapleConfig::default());
    let pa = b.map(0x5000_0000, 1);
    b.mem.write_u32(pa, 50);
    let op = b.store(StoreOp::SetAmoOperand, 1, 40);
    b.run_until_ack(op, 100);
    let id = b.store(StoreOp::ProduceAmoMin, 1, 0x5000_0000);
    b.run_until_ack(id, 5000);
    let c = b.load(LoadOp::Consume, 1, 4);
    assert_eq!(b.run_until_ack(c, 5000), 50);
    assert_eq!(b.mem.read_u32(pa), 40, "min applied");
}

#[test]
fn reset_during_lima_ignores_stale_chunk_responses() {
    // Failure injection: reset the engine while LIMA chunks are in
    // flight; their late DRAM responses must be ignored, not corrupt the
    // fresh state. (The engine drops *its own* transaction tracking on
    // reset, so stale responses for old ids would otherwise panic.)
    let mut b = Bench::new(MapleConfig::default());
    b.map(0x5000_0000, 4);
    b.map(0x6000_0000, 1);
    for i in 0..64u64 {
        let pa = b.pt.translate(&b.mem, VAddr(0x6000_0000 + i * 4)).unwrap().paddr;
        b.mem.write_u32(pa, (i * 3 % 1024) as u32);
    }
    for (op, val) in [
        (StoreOp::LimaABase, 0x5000_0000u64),
        (StoreOp::LimaBBase, 0x6000_0000),
        (StoreOp::LimaRange, lima_range_payload(0, 64)),
    ] {
        let id = b.store(op, 0, val);
        b.run_until_ack(id, 200);
    }
    let go = b.store(StoreOp::LimaGo, 0, lima_go_payload(false, 4, 4));
    b.run_until_ack(go, 200);
    // Let the fetches launch, then capture in-flight responses manually:
    // run a few cycles so chunk fetches are in DRAM.
    b.run(50);
    // Reset the engine mid-flight. In the real system the NoC may still
    // deliver responses for the old transactions; our bench's L2 will.
    let r = b.store(StoreOp::Reset, 0, 0);
    b.run_until_ack(r, 200);
    // Drain everything that was in flight; must not panic, queue stays
    // empty, and a fresh produce works.
    b.run(2000);
    assert!(b.engine.queue(0).is_empty(), "reset left queue contents");
    let p = b.store(StoreOp::Produce, 0, 42);
    b.run_until_ack(p, 200);
    let c = b.load(LoadOp::Consume, 0, 4);
    assert_eq!(b.run_until_ack(c, 200), 42);
}

#[test]
fn queue_wraps_around_many_times_without_corruption() {
    // Cycle far more entries than the ring holds (default: 32 × 4 B) in
    // mixed burst sizes, so head/tail wrap the backing ring repeatedly
    // and land on every alignment. Values must come out in FIFO order
    // and the conservation counters must account for every entry.
    let mut b = Bench::new(MapleConfig::default());
    let total = 200u64;
    let mut produced = 0u64;
    let mut consumed = 0u64;
    while consumed < total {
        // Produce a burst (bounded by remaining work and queue space).
        let burst = [1u64, 7, 32, 3][(produced % 4) as usize]
            .min(total - produced)
            .min(32 - (produced - consumed));
        for _ in 0..burst {
            let id = b.store(StoreOp::Produce, 0, 0x1_0000 + produced);
            b.run_until_ack(id, 200);
            produced += 1;
        }
        // Drain roughly half of what is outstanding (at least one).
        let drain = ((produced - consumed) / 2).max(1);
        for _ in 0..drain {
            let c = b.load(LoadOp::Consume, 0, 4);
            assert_eq!(b.run_until_ack(c, 200), 0x1_0000 + consumed, "FIFO order after wrap");
            consumed += 1;
        }
    }
    assert_eq!(b.engine.queue(0).produced.get(), total);
    assert_eq!(b.engine.queue(0).consumed.get(), total);
    assert!(b.engine.queue(0).is_empty());
}

#[test]
fn occupancy_stat_tracks_full_and_empty_boundaries() {
    // STAT_OCCUPANCY over the whole hysteresis loop: empty → full →
    // empty, checked at every step against the ground-truth queue state.
    let mut b = Bench::new(MapleConfig::default()); // 32 entries
    let occ = |b: &mut Bench| {
        let s = b.load(LoadOp::StatOccupancy, 0, 8);
        b.run_until_ack(s, 200)
    };
    assert_eq!(occ(&mut b), 0, "fresh queue is empty");
    for i in 0..32u64 {
        let id = b.store(StoreOp::Produce, 0, i);
        b.run_until_ack(id, 200);
        assert_eq!(occ(&mut b), i + 1);
    }
    assert!(b.engine.queue(0).is_full(), "32nd produce fills the queue");
    // One more produce is withheld; occupancy must not exceed capacity.
    let extra = b.store(StoreOp::Produce, 0, 99);
    b.run(200);
    assert_eq!(b.ack_of(extra), None);
    assert_eq!(occ(&mut b), 32, "occupancy saturates at capacity");
    for i in 0..32u64 {
        let c = b.load(LoadOp::Consume, 0, 4);
        assert_eq!(b.run_until_ack(c, 200), i);
    }
    // The buffered 33rd produce slid into the freed slot.
    b.run_until_ack(extra, 200);
    assert_eq!(occ(&mut b), 1);
    let c = b.load(LoadOp::Consume, 0, 4);
    assert_eq!(b.run_until_ack(c, 200), 99);
    assert_eq!(occ(&mut b), 0, "fully drained");
    assert!(b.engine.queue(0).is_empty());
}

#[test]
fn mixed_produce_and_produce_ptr_keep_program_order() {
    // Interleave immediate PRODUCEs (fill at once) with PRODUCE_PTRs
    // (fill only when the DRAM fetch returns, hundreds of cycles later).
    // The CONSUME stream must still observe strict program order: an
    // immediate value enqueued *after* a pointer must not overtake it.
    let mut b = Bench::new(MapleConfig::default());
    let pa = b.map(0x4000_0000, 1);
    for i in 0..8u64 {
        b.mem.write_u32(pa.offset(i * 4), (500 + i) as u32);
    }
    // Program order: ptr(500), imm(1), ptr(501), imm(2), ... — issued
    // back-to-back without waiting, so pointer fetches are still in
    // flight when the immediates arrive.
    let mut expect = Vec::new();
    let mut ids = Vec::new();
    for i in 0..8u64 {
        ids.push(b.store(StoreOp::ProducePtr, 0, 0x4000_0000 + i * 4));
        expect.push(500 + i);
        ids.push(b.store(StoreOp::Produce, 0, i + 1));
        expect.push(i + 1);
    }
    for id in ids {
        b.run_until_ack(id, 10_000);
    }
    for (i, e) in expect.iter().enumerate() {
        let c = b.load(LoadOp::Consume, 0, 4);
        assert_eq!(b.run_until_ack(c, 10_000), *e, "position {i} out of program order");
    }
    assert!(b.engine.queue(0).is_empty());
    assert_eq!(b.engine.queue(0).produced.get(), 16);
    assert_eq!(b.engine.queue(0).consumed.get(), 16);
}

#[test]
fn mmio_offsets_stay_inside_one_page() {
    for q in 0..8 {
        assert!(store_offset(StoreOp::FaultResume, q) < maple_mem::PAGE_SIZE);
        assert!(load_offset(mmio::LoadOp::FaultVa, q) < maple_mem::PAGE_SIZE);
    }
}

// ---------------------------------------------------------------------------
// Fault-plane & robustness tests
// ---------------------------------------------------------------------------

use maple_sim::fault::{FaultSchedule, WatchdogConfig};

#[test]
fn stale_responses_counted_across_back_to_back_resets() {
    // Regression for DESIGN.md §4b: every reset drops the engine's
    // in-flight transaction tracking while DRAM responses are still on
    // their way back. Two back-to-back resets must count ALL of the
    // orphaned responses (the counter survives reset) and leave the
    // engine fully functional.
    let mut b = Bench::new(MapleConfig::default());
    b.map(0x4000_0000, 1);
    for _round in 0..2 {
        for i in 0..4u64 {
            let id = b.store(StoreOp::ProducePtr, 0, 0x4000_0000 + i * 4);
            b.run_until_ack(id, 5000);
        }
        // All four fetches are in DRAM (300-cycle latency); reset now.
        let r = b.store(StoreOp::Reset, 0, 0);
        b.run_until_ack(r, 200);
    }
    // Drain the orphaned responses from both rounds.
    b.run(3000);
    assert_eq!(
        b.engine.stats().stale_responses.get(),
        8,
        "every orphaned response counted, none double-counted"
    );
    assert!(b.engine.queue(0).is_empty(), "stale fills must not land");
    // Engine still works after the double reset.
    let p = b.store(StoreOp::Produce, 0, 11);
    b.run_until_ack(p, 200);
    let c = b.load(LoadOp::Consume, 0, 4);
    assert_eq!(b.run_until_ack(c, 200), 11);
}

#[test]
fn out_of_range_queue_reports_error_not_panic() {
    // An engine configured with fewer than 8 queues can still receive
    // MMIO offsets that decode to a high queue index. That must produce
    // an error response (all-ones) and a counter bump, never an
    // out-of-bounds panic.
    let cfg = MapleConfig {
        queues: 4,
        ..MapleConfig::default()
    };
    let mut b = Bench::new(cfg);
    let s = b.store(StoreOp::Produce, 5, 1);
    assert_eq!(b.run_until_ack(s, 100), u64::MAX, "store rejected");
    let c = b.load(LoadOp::Consume, 6, 4);
    assert_eq!(b.run_until_ack(c, 100), u64::MAX, "consume rejected");
    assert_eq!(b.engine.stats().bad_requests.get(), 2);
    // In-range queues unaffected.
    let p = b.store(StoreOp::Produce, 3, 9);
    b.run_until_ack(p, 100);
    let c2 = b.load(LoadOp::Consume, 3, 4);
    assert_eq!(b.run_until_ack(c2, 100), 9);
}

#[test]
fn watchdog_retries_lost_fetch_and_completes() {
    let mut b = Bench::new(MapleConfig::default());
    b.engine.set_watchdog(WatchdogConfig {
        timeout: 500,
        max_retries: 3,
    });
    let pa = b.map(0x4000_0000, 1);
    b.mem.write_u32(pa, 777);
    let id = b.store(StoreOp::ProducePtr, 0, 0x4000_0000);
    // Pump manually, losing the FIRST memory request the engine emits
    // (a dropped NoC packet).
    let mut dropped = false;
    for _ in 0..5000 {
        b.engine.tick(b.now, &b.mem);
        while let Some(req) = b.engine.pop_mem_request() {
            if !dropped {
                dropped = true;
                continue; // lost on the NoC
            }
            b.l2.accept(b.now, req);
        }
        b.l2.tick(b.now, &mut b.mem);
        while let Some(resp) = b.l2.pop_outgoing() {
            b.engine.on_mem_resp(b.now, resp.resp, &b.mem);
        }
        while let Some(r) = b.engine.pop_response(b.now) {
            b.acks.push((r.resp.id, r.resp.data));
        }
        b.now += 1;
    }
    assert!(dropped, "a fetch was issued and lost");
    assert!(b.ack_of(id).is_some(), "produce store acked at accept time");
    assert!(b.engine.stats().fetch_timeouts.get() >= 1);
    assert_eq!(b.engine.stats().fetch_retries.get(), 1);
    assert!(!b.engine.is_poisoned(), "recovered, not poisoned");
    let c = b.load(LoadOp::Consume, 0, 4);
    assert_eq!(b.run_until_ack(c, 5000), 777, "retried fetch delivered");
}

#[test]
fn watchdog_exhaustion_poisons_engine() {
    let mut b = Bench::new(MapleConfig::default());
    b.engine.set_watchdog(WatchdogConfig {
        timeout: 100,
        max_retries: 3,
    });
    b.map(0x4000_0000, 1);
    let id = b.store(StoreOp::ProducePtr, 0, 0x4000_0000);
    // Black-hole every memory request: the fetch can never complete.
    for _ in 0..5000 {
        b.engine.tick(b.now, &b.mem);
        while b.engine.pop_mem_request().is_some() {}
        while let Some(r) = b.engine.pop_response(b.now) {
            b.acks.push((r.resp.id, r.resp.data));
        }
        b.now += 1;
    }
    assert!(b.ack_of(id).is_some(), "produce store itself was acked");
    assert!(b.engine.is_poisoned());
    assert_eq!(b.engine.stats().fetch_retries.get(), 3);
    assert_eq!(b.engine.stats().fetch_timeouts.get(), 4, "initial + 3 retries");
    assert_eq!(b.engine.stats().poisoned_fetches.get(), 1);
    assert_eq!(b.engine.inflight_fetches(), 0, "abandoned fetch untracked");
    // A reset clears the poison.
    let r = b.store(StoreOp::Reset, 0, 0);
    b.run_until_ack(r, 200);
    assert!(!b.engine.is_poisoned());
}

#[test]
fn timed_out_amo_fetch_is_not_retried() {
    // Retrying an atomic would double-apply the side effect, so the
    // watchdog must poison immediately instead.
    let mut b = Bench::new(MapleConfig::default());
    b.engine.set_watchdog(WatchdogConfig {
        timeout: 100,
        max_retries: 3,
    });
    let pa = b.map(0x4000_0000, 1);
    b.mem.write_u32(pa, 50);
    let op = b.store(StoreOp::SetAmoOperand, 0, 7);
    b.run_until_ack(op, 100);
    let _id = b.store(StoreOp::ProduceAmoAdd, 0, 0x4000_0000);
    for _ in 0..2000 {
        b.engine.tick(b.now, &b.mem);
        while b.engine.pop_mem_request().is_some() {}
        while let Some(r) = b.engine.pop_response(b.now) {
            b.acks.push((r.resp.id, r.resp.data));
        }
        b.now += 1;
    }
    assert!(b.engine.is_poisoned());
    assert_eq!(b.engine.stats().fetch_retries.get(), 0, "atomics never retried");
    assert_eq!(b.engine.stats().poisoned_fetches.get(), 1);
}

#[test]
fn retried_request_replays_response_without_double_effect() {
    // A core watchdog re-sends an MMIO store whose ack was lost. The
    // engine must recognise the (requester, txid) pair and replay the
    // recorded ack instead of executing the produce twice.
    let mut b = Bench::new(MapleConfig::default());
    let p = b.store(StoreOp::Produce, 0, 5);
    b.run_until_ack(p, 100);
    b.engine.accept(
        b.now,
        MemReq {
            id: p,
            addr: PAddr(ENGINE_PAGE + store_offset(StoreOp::Produce, 0)),
            kind: MemReqKind::Write {
                size: 8,
                data: 5,
                ack: true,
            },
            reply_to: Coord::new(0, 0),
        },
    );
    b.run(100);
    assert_eq!(b.engine.stats().replayed_responses.get(), 1);
    assert_eq!(b.engine.queue(0).produced.get(), 1, "no double push");
    assert_eq!(b.engine.queue(0).occupancy(), 1);
}

#[test]
fn duplicate_of_inflight_request_is_dropped() {
    // Retry arrives while the original operation is still buffered
    // (consume on an empty queue): the duplicate must be swallowed, and
    // the eventual data delivered exactly once.
    let mut b = Bench::new(MapleConfig::default());
    let c = b.load(LoadOp::Consume, 0, 4);
    b.run(50);
    b.engine.accept(
        b.now,
        MemReq {
            id: c,
            addr: PAddr(ENGINE_PAGE + load_offset(LoadOp::Consume, 0)),
            kind: MemReqKind::ReadWord { size: 4 },
            reply_to: Coord::new(0, 0),
        },
    );
    b.run(50);
    assert_eq!(b.engine.stats().duplicate_requests.get(), 1);
    let p = b.store(StoreOp::Produce, 0, 42);
    b.run_until_ack(p, 100);
    assert_eq!(b.run_until_ack(c, 100), 42);
    assert_eq!(b.engine.queue(0).consumed.get(), 1, "popped exactly once");
}

// ---------------------------------------------------------------------------
// Engine virtualization: context save/restore
// ---------------------------------------------------------------------------

#[test]
fn mid_fetch_context_switch_round_trips_exactly() {
    // Tenant A is caught mid-flight: pointer fetches outstanding in DRAM,
    // an immediate value already enqueued behind the reserved slots, and
    // a consume buffered against an empty queue. Saving the context,
    // running tenant B on the bare engine, and restoring A must bring
    // back queue occupancy and in-flight fetch state bit for bit — and
    // the restored fetches must still complete in program order.
    let mut b = Bench::new(MapleConfig::default());
    let pa = b.map(0x4000_0000, 1);
    for i in 0..3u64 {
        b.mem.write_u32(pa.offset(i * 4), (900 + i) as u32);
    }
    for i in 0..3u64 {
        let id = b.store(StoreOp::ProducePtr, 0, 0x4000_0000 + i * 4);
        b.run_until_ack(id, 200);
    }
    let imm = b.store(StoreOp::Produce, 0, 77);
    b.run_until_ack(imm, 200);
    let c1 = b.load(LoadOp::Consume, 1, 4);
    b.run(20); // decode the consume; queue 1 stays empty so it buffers
    assert_eq!(b.engine.inflight_fetches(), 3, "fetches still in DRAM");
    assert_eq!(b.engine.pending_consumes(), 1);
    let occupancies = b.engine.queue_occupancies();
    assert_eq!(occupancies[0], 4, "3 reserved slots + 1 filled");

    let ctx = b.engine.save_context();
    assert_eq!(ctx.inflight_fetches(), 3);
    assert_eq!(ctx.pending_produces(), 0);
    assert_eq!(ctx.pending_consumes(), 1);
    assert_eq!(ctx.queue_occupancies(), occupancies);
    assert!(!ctx.is_quiescent());

    // Tenant B gets the bare engine. Pump the engine alone (no L2) so
    // A's DRAM responses stay parked until A is switched back in.
    b.engine.reset();
    assert_eq!(b.engine.inflight_fetches(), 0);
    assert_eq!(b.engine.queue_occupancies()[0], 0);
    let bp = b.store(StoreOp::Produce, 0, 5555);
    let bc = b.load(LoadOp::Consume, 0, 4);
    for _ in 0..100 {
        b.engine.tick(b.now, &b.mem);
        assert!(
            b.engine.pop_mem_request().is_none(),
            "tenant B is pure immediate traffic"
        );
        while let Some(r) = b.engine.pop_response(b.now) {
            b.acks.push((r.resp.id, r.resp.data));
        }
        b.now += 1;
    }
    assert!(b.ack_of(bp).is_some());
    assert_eq!(b.ack_of(bc), Some(5555), "tenant B ran on the bare engine");

    // Switch A back in: every observable must match the snapshot.
    b.engine.restore_context(ctx.clone());
    assert_eq!(b.engine.inflight_fetches(), 3);
    assert_eq!(b.engine.pending_consumes(), 1);
    assert_eq!(b.engine.queue_occupancies(), occupancies);

    // A's parked DRAM responses now land in the restored slots; the
    // consume stream observes program order across the switch.
    for i in 0..3u64 {
        let c = b.load(LoadOp::Consume, 0, 4);
        assert_eq!(b.run_until_ack(c, 10_000), 900 + i, "position {i}");
    }
    let c = b.load(LoadOp::Consume, 0, 4);
    assert_eq!(b.run_until_ack(c, 10_000), 77, "immediate behind the ptrs");
    // The buffered consume on queue 1 survived the round trip too.
    let p1 = b.store(StoreOp::Produce, 1, 31);
    b.run_until_ack(p1, 200);
    assert_eq!(b.run_until_ack(c1, 200), 31);
}

#[test]
fn two_tenant_contexts_keep_queue_contents_isolated() {
    let mut b = Bench::new(MapleConfig::default());
    // Tenant A enqueues 10, 11.
    for v in [10u64, 11] {
        let id = b.store(StoreOp::Produce, 0, v);
        b.run_until_ack(id, 200);
    }
    let ctx_a = b.engine.save_context();
    // Tenant B starts fresh and enqueues 20.
    b.engine.reset();
    let id = b.store(StoreOp::Produce, 0, 20);
    b.run_until_ack(id, 200);
    let ctx_b = b.engine.save_context();
    assert!(ctx_b.is_quiescent(), "drained tenant saves a quiescent context");

    // A drains its own values, untouched by B's occupancy.
    b.engine.restore_context(ctx_a);
    assert_eq!(b.engine.queue_occupancies()[0], 2);
    for v in [10u64, 11] {
        let c = b.load(LoadOp::Consume, 0, 4);
        assert_eq!(b.run_until_ack(c, 200), v);
    }
    // B's single entry is exactly where it left it.
    b.engine.restore_context(ctx_b);
    assert_eq!(b.engine.queue_occupancies()[0], 1);
    let c = b.load(LoadOp::Consume, 0, 4);
    assert_eq!(b.run_until_ack(c, 200), 20);
}

#[test]
#[should_panic(expected = "incompatible configuration")]
fn context_restore_rejects_mismatched_queue_count() {
    let small = Engine::new(MapleConfig {
        queues: 4,
        ..MapleConfig::default()
    });
    let ctx = small.save_context();
    let mut full = Engine::new(MapleConfig::default());
    full.restore_context(ctx);
}

#[test]
fn ack_loss_schedule_drops_responses_at_source() {
    let mut b = Bench::new(MapleConfig::default());
    // Rate 1.0: every outbound response is lost.
    b.engine.set_ack_fault(FaultSchedule::new(1.0, 0, 7));
    let p = b.store(StoreOp::Produce, 0, 3);
    b.run(500);
    assert_eq!(b.ack_of(p), None, "ack swallowed by the fault plane");
    assert!(b.engine.stats().acks_dropped.get() >= 1);
    // The produce itself still executed; the replay cache holds the ack.
    assert_eq!(b.engine.queue(0).produced.get(), 1);
}
