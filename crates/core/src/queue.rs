//! Scratchpad-backed circular FIFO queues with in-order slot reservation.
//!
//! MAPLE's queues (Figure 6) are circular FIFOs carved out of a shared
//! scratchpad. A pointer-produce *reserves* the next slot and uses its index
//! as the memory transaction ID, so responses arriving out of order are
//! written back into program order — the mechanism that gives MAPLE its
//! memory-level parallelism without a core-side ROB.

use std::collections::VecDeque;

use maple_sim::stats::Counter;

/// Why a queue operation could not proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueError {
    /// All slots are in use (produce side must buffer — never overflow).
    Full,
    /// The requested configuration exceeds the scratchpad budget.
    ScratchpadExceeded,
    /// Entry size must be 4 or 8 bytes.
    BadEntrySize,
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::Full => write!(f, "queue full"),
            QueueError::ScratchpadExceeded => write!(f, "scratchpad budget exceeded"),
            QueueError::BadEntrySize => write!(f, "entry size must be 4 or 8 bytes"),
        }
    }
}

impl std::error::Error for QueueError {}

/// A slot reservation ticket: the transaction ID for the in-flight fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Slot(pub u64);

/// One circular FIFO.
#[derive(Debug, Clone)]
pub struct FifoQueue {
    /// (sequence, value-if-arrived) in FIFO order.
    slots: VecDeque<(u64, Option<u64>)>,
    next_seq: u64,
    entries: usize,
    entry_bytes: u8,
    /// Entries ever produced (reserved or written).
    pub produced: Counter,
    /// Entries ever consumed.
    pub consumed: Counter,
}

impl FifoQueue {
    /// Creates a standalone queue of `entries` × `entry_bytes` (the
    /// controller builds queues against a scratchpad budget; this
    /// constructor serves tests and tooling).
    #[must_use]
    pub fn new(entries: usize, entry_bytes: u8) -> Self {
        FifoQueue {
            slots: VecDeque::new(),
            next_seq: 0,
            entries,
            entry_bytes,
            produced: Counter::new(),
            consumed: Counter::new(),
        }
    }

    /// Capacity in entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.entries
    }

    /// Entry size in bytes.
    #[must_use]
    pub fn entry_bytes(&self) -> u8 {
        self.entry_bytes
    }

    /// Occupied slots (filled or reserved).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.slots.len()
    }

    /// Whether no slot is free.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.slots.len() >= self.entries
    }

    /// Whether the queue holds nothing (not even reservations).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Enqueues an immediate value.
    ///
    /// # Errors
    ///
    /// [`QueueError::Full`] when no slot is free.
    pub fn push(&mut self, value: u64) -> Result<(), QueueError> {
        self.reserve().map(|s| self.fill(s, value))?;
        Ok(())
    }

    /// Reserves the next slot for an in-flight fetch; the returned [`Slot`]
    /// doubles as the memory transaction ID.
    ///
    /// # Errors
    ///
    /// [`QueueError::Full`] when no slot is free.
    pub fn reserve(&mut self) -> Result<Slot, QueueError> {
        if self.is_full() {
            return Err(QueueError::Full);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slots.push_back((seq, None));
        self.produced.inc();
        Ok(Slot(seq))
    }

    /// Writes the fetched data into its reserved slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot was never reserved, was already consumed, or is
    /// filled twice — all protocol violations the RTL's formal properties
    /// rule out.
    pub fn fill(&mut self, slot: Slot, value: u64) {
        let entry = self
            .slots
            .iter_mut()
            .find(|(seq, _)| *seq == slot.0)
            .expect("fill of unreserved or already-consumed slot");
        assert!(entry.1.is_none(), "slot filled twice");
        entry.1 = Some(value);
    }

    /// Number of entries ready for consumption at the head (a contiguous
    /// run of filled slots).
    #[must_use]
    pub fn ready_at_head(&self) -> usize {
        self.slots
            .iter()
            .take_while(|(_, v)| v.is_some())
            .count()
    }

    /// Pops the head entry if it has arrived.
    pub fn pop(&mut self) -> Option<u64> {
        match self.slots.front() {
            Some((_, Some(_))) => {
                self.consumed.inc();
                self.slots.pop_front().and_then(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Pops `n` head entries if all have arrived, packing them
    /// little-endian (entry 0 in the low bits). Used by wide consumes:
    /// an 8-byte load from a 4-byte-entry queue pops two entries.
    pub fn pop_packed(&mut self, n: usize) -> Option<u64> {
        if self.ready_at_head() < n {
            return None;
        }
        let mut out = 0u64;
        let shift = u64::from(self.entry_bytes) * 8;
        for i in 0..n {
            let v = self.pop().expect("readiness checked");
            let mask = if shift >= 64 { u64::MAX } else { (1u64 << shift) - 1 };
            out |= (v & mask) << (shift * i as u64);
        }
        Some(out)
    }
}

/// The queue controller: all FIFOs of one MAPLE instance sharing a
/// scratchpad budget.
#[derive(Debug, Clone)]
pub struct QueueController {
    queues: Vec<FifoQueue>,
    scratchpad_bytes: u64,
}

impl QueueController {
    /// Creates `count` queues of `entries` × `entry_bytes` each.
    ///
    /// # Errors
    ///
    /// [`QueueError::ScratchpadExceeded`] if the configuration does not fit
    /// the scratchpad, [`QueueError::BadEntrySize`] for entry sizes other
    /// than 4 or 8.
    pub fn new(
        count: usize,
        entries: usize,
        entry_bytes: u8,
        scratchpad_bytes: u64,
    ) -> Result<Self, QueueError> {
        if !matches!(entry_bytes, 4 | 8) {
            return Err(QueueError::BadEntrySize);
        }
        let need = (count * entries * usize::from(entry_bytes)) as u64;
        if need > scratchpad_bytes {
            return Err(QueueError::ScratchpadExceeded);
        }
        Ok(QueueController {
            queues: (0..count).map(|_| FifoQueue::new(entries, entry_bytes)).collect(),
        scratchpad_bytes,
        })
    }

    /// Number of queues.
    #[must_use]
    pub fn count(&self) -> usize {
        self.queues.len()
    }

    /// Scratchpad capacity in bytes.
    #[must_use]
    pub fn scratchpad_bytes(&self) -> u64 {
        self.scratchpad_bytes
    }

    /// Immutable access to queue `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn queue(&self, q: u8) -> &FifoQueue {
        &self.queues[usize::from(q)]
    }

    /// Mutable access to queue `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn queue_mut(&mut self, q: u8) -> &mut FifoQueue {
        &mut self.queues[usize::from(q)]
    }

    /// Reconfigures queue `q` (the `CONFIG_QUEUE` operation). The queue
    /// must be drained first; other queues are unaffected.
    ///
    /// # Errors
    ///
    /// [`QueueError::BadEntrySize`] or [`QueueError::ScratchpadExceeded`]
    /// when the new shape is invalid; the old shape is kept on error.
    pub fn reconfigure(
        &mut self,
        q: u8,
        entries: usize,
        entry_bytes: u8,
    ) -> Result<(), QueueError> {
        if !matches!(entry_bytes, 4 | 8) {
            return Err(QueueError::BadEntrySize);
        }
        let others: u64 = self
            .queues
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != usize::from(q))
            .map(|(_, fq)| (fq.capacity() * usize::from(fq.entry_bytes())) as u64)
            .sum();
        if others + (entries * usize::from(entry_bytes)) as u64 > self.scratchpad_bytes {
            return Err(QueueError::ScratchpadExceeded);
        }
        self.queues[usize::from(q)] = FifoQueue::new(entries, entry_bytes);
        Ok(())
    }

    /// Whether every queue is completely empty.
    #[must_use]
    pub fn all_empty(&self) -> bool {
        self.queues.iter().all(FifoQueue::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q32() -> FifoQueue {
        FifoQueue::new(32, 4)
    }

    #[test]
    fn push_pop_order() {
        let mut q = q32();
        for v in 0..10u64 {
            q.push(v).unwrap();
        }
        for v in 0..10u64 {
            assert_eq!(q.pop(), Some(v));
        }
        assert_eq!(q.pop(), None);
        assert_eq!(q.produced.get(), 10);
        assert_eq!(q.consumed.get(), 10);
    }

    #[test]
    fn reserve_fill_reorders_to_program_order() {
        let mut q = q32();
        let s1 = q.reserve().unwrap();
        let s2 = q.reserve().unwrap();
        let s3 = q.reserve().unwrap();
        // Memory responses arrive out of order.
        q.fill(s3, 33);
        q.fill(s1, 11);
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), None, "second slot still in flight");
        q.fill(s2, 22);
        assert_eq!(q.pop(), Some(22));
        assert_eq!(q.pop(), Some(33));
    }

    #[test]
    fn full_queue_refuses_reservation() {
        let mut q = FifoQueue::new(2, 4);
        let _ = q.reserve().unwrap();
        let _ = q.reserve().unwrap();
        assert!(q.is_full());
        assert_eq!(q.reserve(), Err(QueueError::Full));
        assert_eq!(q.push(5), Err(QueueError::Full));
    }

    #[test]
    fn pop_packed_two_words() {
        let mut q = FifoQueue::new(8, 4);
        q.push(0x1111_1111).unwrap();
        q.push(0x2222_2222).unwrap();
        q.push(0x3333_3333).unwrap();
        assert_eq!(q.pop_packed(2), Some(0x2222_2222_1111_1111));
        assert_eq!(q.pop_packed(2), None, "only one entry left");
        assert_eq!(q.pop_packed(1), Some(0x3333_3333));
    }

    #[test]
    fn pop_packed_blocks_on_unfilled_head() {
        let mut q = FifoQueue::new(8, 4);
        let s = q.reserve().unwrap();
        q.push(7).unwrap();
        assert_eq!(q.pop_packed(2), None, "head still in flight");
        q.fill(s, 6);
        assert_eq!(q.pop_packed(2), Some((7 << 32) | 6));
    }

    #[test]
    #[should_panic(expected = "filled twice")]
    fn double_fill_panics() {
        let mut q = q32();
        let s = q.reserve().unwrap();
        q.fill(s, 1);
        q.fill(s, 2);
    }

    #[test]
    fn controller_budget_enforced() {
        // 8 × 32 × 4 B = 1 KB exactly: the paper's shipped configuration.
        let c = QueueController::new(8, 32, 4, 1024).unwrap();
        assert_eq!(c.count(), 8);
        assert!(QueueController::new(8, 33, 4, 1024).is_err());
        assert!(matches!(
            QueueController::new(8, 32, 3, 1024),
            Err(QueueError::BadEntrySize)
        ));
    }

    #[test]
    fn controller_reconfigure() {
        let mut c = QueueController::new(2, 16, 4, 256).unwrap();
        // Grow queue 0 to 32 × 4 = 128; q1 keeps 64 → 192 ≤ 256: ok.
        c.reconfigure(0, 32, 4).unwrap();
        assert_eq!(c.queue(0).capacity(), 32);
        // Too big: 48 × 4 + 64 = 256... exactly fits.
        c.reconfigure(0, 48, 4).unwrap();
        // One more entry exceeds the budget and must fail.
        assert_eq!(
            c.reconfigure(0, 49, 4),
            Err(QueueError::ScratchpadExceeded)
        );
        assert_eq!(c.queue(0).capacity(), 48, "old shape kept on error");
    }

    #[test]
    fn ready_at_head_counts_contiguous() {
        let mut q = q32();
        q.push(1).unwrap();
        let s = q.reserve().unwrap();
        q.push(3).unwrap();
        assert_eq!(q.ready_at_head(), 1);
        q.fill(s, 2);
        assert_eq!(q.ready_at_head(), 3);
    }

    #[test]
    fn error_display() {
        assert_eq!(QueueError::Full.to_string(), "queue full");
        assert!(QueueError::ScratchpadExceeded.to_string().contains("scratchpad"));
    }
}
