//! The MAPLE MMIO encoding.
//!
//! Each MAPLE instance occupies one 4 KiB physical page. Following Section
//! 3.6 of the paper, the word index within the page is re-purposed to carry
//! the operation: bits 3–8 of the page offset encode the op code (64 load
//! ops + 64 store ops) and bits 9–11 select one of up to eight hardware
//! queues. User code therefore drives the engine entirely with ordinary
//! loads and stores to `instance_base + offset(op, queue)`.

/// Bit position of the op-code field within a page offset.
const OP_SHIFT: u64 = 3;
/// Bit position of the queue field within a page offset.
const QUEUE_SHIFT: u64 = 9;

/// Operations encoded in *store* accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum StoreOp {
    /// Enqueue the stored data into the queue (decoupling `PRODUCE`).
    Produce = 0,
    /// Treat the stored data as a virtual pointer: translate, fetch
    /// non-coherently from DRAM, enqueue the response in program order
    /// (`PRODUCE_PTR`).
    ProducePtr = 1,
    /// Like [`StoreOp::ProducePtr`] but fetched coherently via the LLC.
    ProducePtrLlc = 2,
    /// Speculative prefetch of the pointed-to line into the LLC
    /// (`PREFETCH`).
    Prefetch = 3,
    /// Configure the queue: low 32 bits = entry count, bits 32–39 = entry
    /// size in bytes (4 or 8).
    ConfigQueue = 4,
    /// LIMA: set the base virtual address of the data array `A`.
    LimaABase = 5,
    /// LIMA: set the base virtual address of the index array `B`.
    LimaBBase = 6,
    /// LIMA: set the index range, `lo` in the low 32 bits, `hi` in the
    /// high 32 bits.
    LimaRange = 7,
    /// LIMA: launch. Bit 0 selects the target (0 = non-speculative into
    /// the addressed queue, 1 = speculative into the LLC); bits 8–15 the
    /// element size of `B`; bits 16–23 the element size of `A`.
    LimaGo = 8,
    /// Driver only: program the page-table root into the engine MMU.
    SetPtRoot = 9,
    /// Driver only: invalidate the engine TLB entry for the stored
    /// virtual address (shootdown callback).
    TlbShootdown = 10,
    /// Reset all engine state (the API's `INIT`).
    Reset = 11,
    /// Release the addressed queue (`CLOSE`).
    Close = 12,
    /// Driver only: retry the operation that faulted (`FAULT_RESUME`).
    FaultResume = 13,
    /// Extension (paper §3: "easily extensible to incorporate … RMW
    /// atomic operations"): treat the stored data as a pointer, perform
    /// an atomic fetch-add of the queue's operand register at the L2
    /// serialization point, and enqueue the *old* value in program order.
    ProduceAmoAdd = 14,
    /// Extension: like [`StoreOp::ProduceAmoAdd`] with unsigned fetch-min.
    ProduceAmoMin = 15,
    /// Extension: set the queue's atomic operand register (the addend for
    /// fetch-add, the bound for fetch-min).
    SetAmoOperand = 16,
}

/// Operations encoded in *load* accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum LoadOp {
    /// Pop the head of the queue (decoupling `CONSUME`). An 8-byte load
    /// from a 4-byte-entry queue pops two entries at once.
    Consume = 0,
    /// Claim exclusive use of the queue; returns 1 on success (`OPEN`).
    Open = 1,
    /// Performance counter: entries ever produced into the queue.
    StatProduced = 2,
    /// Performance counter: entries ever consumed from the queue.
    StatConsumed = 3,
    /// Performance counter: current queue occupancy.
    StatOccupancy = 4,
    /// Performance counter: memory fetches issued by the engine.
    StatMemFetches = 5,
    /// Performance counter: engine TLB misses.
    StatTlbMisses = 6,
    /// Driver only: the faulting virtual address (0 when no fault is
    /// pending).
    FaultVa = 7,
}

/// Encodes the page offset for a store operation on `queue`.
///
/// # Panics
///
/// Panics if `queue >= 8`.
#[must_use]
pub fn store_offset(op: StoreOp, queue: u8) -> u64 {
    assert!(queue < 8, "MAPLE exposes at most 8 queues per instance");
    (u64::from(queue) << QUEUE_SHIFT) | ((op as u64) << OP_SHIFT)
}

/// Encodes the page offset for a load operation on `queue`.
///
/// # Panics
///
/// Panics if `queue >= 8`.
#[must_use]
pub fn load_offset(op: LoadOp, queue: u8) -> u64 {
    assert!(queue < 8, "MAPLE exposes at most 8 queues per instance");
    (u64::from(queue) << QUEUE_SHIFT) | ((op as u64) << OP_SHIFT)
}

/// Decodes a store offset. Returns `None` for unknown op codes.
#[must_use]
pub fn decode_store(offset: u64) -> Option<(StoreOp, u8)> {
    let queue = ((offset >> QUEUE_SHIFT) & 0x7) as u8;
    let op = match (offset >> OP_SHIFT) & 0x3f {
        0 => StoreOp::Produce,
        1 => StoreOp::ProducePtr,
        2 => StoreOp::ProducePtrLlc,
        3 => StoreOp::Prefetch,
        4 => StoreOp::ConfigQueue,
        5 => StoreOp::LimaABase,
        6 => StoreOp::LimaBBase,
        7 => StoreOp::LimaRange,
        8 => StoreOp::LimaGo,
        9 => StoreOp::SetPtRoot,
        10 => StoreOp::TlbShootdown,
        11 => StoreOp::Reset,
        12 => StoreOp::Close,
        13 => StoreOp::FaultResume,
        14 => StoreOp::ProduceAmoAdd,
        15 => StoreOp::ProduceAmoMin,
        16 => StoreOp::SetAmoOperand,
        _ => return None,
    };
    Some((op, queue))
}

/// Decodes a load offset. Returns `None` for unknown op codes.
#[must_use]
pub fn decode_load(offset: u64) -> Option<(LoadOp, u8)> {
    let queue = ((offset >> QUEUE_SHIFT) & 0x7) as u8;
    let op = match (offset >> OP_SHIFT) & 0x3f {
        0 => LoadOp::Consume,
        1 => LoadOp::Open,
        2 => LoadOp::StatProduced,
        3 => LoadOp::StatConsumed,
        4 => LoadOp::StatOccupancy,
        5 => LoadOp::StatMemFetches,
        6 => LoadOp::StatTlbMisses,
        7 => LoadOp::FaultVa,
        _ => return None,
    };
    Some((op, queue))
}

/// Packs the `CONFIG_QUEUE` payload.
#[must_use]
pub fn config_queue_payload(entries: u32, entry_bytes: u8) -> u64 {
    u64::from(entries) | (u64::from(entry_bytes) << 32)
}

/// Unpacks the `CONFIG_QUEUE` payload.
#[must_use]
pub fn decode_config_queue(payload: u64) -> (u32, u8) {
    (payload as u32, ((payload >> 32) & 0xff) as u8)
}

/// Packs the `LIMA_RANGE` payload.
#[must_use]
pub fn lima_range_payload(lo: u32, hi: u32) -> u64 {
    u64::from(lo) | (u64::from(hi) << 32)
}

/// Unpacks the `LIMA_RANGE` payload into `(lo, hi)`.
#[must_use]
pub fn decode_lima_range(payload: u64) -> (u32, u32) {
    (payload as u32, (payload >> 32) as u32)
}

/// Packs the `LIMA_GO` payload.
#[must_use]
pub fn lima_go_payload(speculative: bool, b_elem: u8, a_elem: u8) -> u64 {
    u64::from(speculative) | (u64::from(b_elem) << 8) | (u64::from(a_elem) << 16)
}

/// Unpacks the `LIMA_GO` payload into `(speculative, b_elem, a_elem)`.
#[must_use]
pub fn decode_lima_go(payload: u64) -> (bool, u8, u8) {
    (
        payload & 1 != 0,
        ((payload >> 8) & 0xff) as u8,
        ((payload >> 16) & 0xff) as u8,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_roundtrip_all_ops() {
        for op in [
            StoreOp::Produce,
            StoreOp::ProducePtr,
            StoreOp::ProducePtrLlc,
            StoreOp::Prefetch,
            StoreOp::ConfigQueue,
            StoreOp::LimaABase,
            StoreOp::LimaBBase,
            StoreOp::LimaRange,
            StoreOp::LimaGo,
            StoreOp::SetPtRoot,
            StoreOp::TlbShootdown,
            StoreOp::Reset,
            StoreOp::Close,
            StoreOp::FaultResume,
            StoreOp::ProduceAmoAdd,
            StoreOp::ProduceAmoMin,
            StoreOp::SetAmoOperand,
        ] {
            for q in 0..8 {
                let off = store_offset(op, q);
                assert!(off < 4096, "offset stays within the page");
                assert_eq!(decode_store(off), Some((op, q)));
            }
        }
    }

    #[test]
    fn load_roundtrip_all_ops() {
        for op in [
            LoadOp::Consume,
            LoadOp::Open,
            LoadOp::StatProduced,
            LoadOp::StatConsumed,
            LoadOp::StatOccupancy,
            LoadOp::StatMemFetches,
            LoadOp::StatTlbMisses,
            LoadOp::FaultVa,
        ] {
            for q in 0..8 {
                assert_eq!(decode_load(load_offset(op, q)), Some((op, q)));
            }
        }
    }

    #[test]
    fn unknown_opcodes_rejected() {
        assert_eq!(decode_store(63 << OP_SHIFT), None);
        assert_eq!(decode_load(63 << OP_SHIFT), None);
    }

    #[test]
    #[should_panic(expected = "at most 8 queues")]
    fn queue_out_of_range_panics() {
        let _ = store_offset(StoreOp::Produce, 8);
    }

    #[test]
    fn payload_packing() {
        let p = config_queue_payload(32, 4);
        assert_eq!(decode_config_queue(p), (32, 4));
        let r = lima_range_payload(10, 500);
        assert_eq!(decode_lima_range(r), (10, 500));
        let g = lima_go_payload(true, 4, 8);
        assert_eq!(decode_lima_go(g), (true, 4, 8));
        let g = lima_go_payload(false, 8, 4);
        assert_eq!(decode_lima_go(g), (false, 8, 4));
    }
}
