//! Area model for the RTL implementation (Section 5.4).
//!
//! The paper reports MAPLE at **1.1 % of an Ariane core** from the 12 nm
//! tape-out synthesis, and criticizes storage-only ("bitcount") estimates in
//! prior work for ignoring FSMs, muxes and combinational logic. This model
//! therefore accounts for both: SRAM/CAM/flop storage from the configured
//! geometry, plus a logic overhead factor per pipeline calibrated against
//! the published synthesis ratio.
//!
//! Densities are representative 12 nm figures: they make the *relative*
//! area claims auditable (what dominates, how area scales with queues and
//! scratchpad) rather than reproducing a foundry report.

use crate::engine::MapleConfig;

/// Representative 12 nm densities.
mod density {
    /// µm² per SRAM bit (high-density single-port).
    pub const SRAM_BIT: f64 = 0.021;
    /// µm² per CAM bit (TLB search structure).
    pub const CAM_BIT: f64 = 0.09;
    /// µm² per flip-flop (including local clocking).
    pub const FLOP: f64 = 0.35;
    /// Combinational-logic multiplier applied to sequential area per
    /// pipeline (decoders, muxes, FSMs — the part bitcount models omit).
    pub const LOGIC_FACTOR: f64 = 1.9;
}

/// Ariane (CVA6) core area in mm² at 12 nm, scaled from the published
/// 22FDX figure (≈0.5 mm² @ 22 nm) by the nominal node shrink.
pub const ARIANE_CORE_MM2: f64 = 0.21;

/// Per-component area breakdown in mm².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// Scratchpad SRAM (queues).
    pub scratchpad: f64,
    /// Queue controller (head/tail/state flops + logic).
    pub queue_controller: f64,
    /// MMU: TLB CAM + PTW state machine.
    pub mmu: f64,
    /// Produce/Consume/Config pipelines (buffers, decoders, encoders).
    pub pipelines: f64,
    /// LIMA unit (address generator + chunk tracking).
    pub lima: f64,
}

impl AreaBreakdown {
    /// Total engine area in mm².
    #[must_use]
    pub fn total(&self) -> f64 {
        self.scratchpad + self.queue_controller + self.mmu + self.pipelines + self.lima
    }

    /// Engine area as a fraction of one Ariane core.
    #[must_use]
    pub fn fraction_of_ariane(&self) -> f64 {
        self.total() / ARIANE_CORE_MM2
    }
}

/// Computes the area of one MAPLE instance from its configuration.
#[must_use]
pub fn engine_area(cfg: &MapleConfig) -> AreaBreakdown {
    let um2_to_mm2 = 1e-6;

    // Scratchpad: pure SRAM.
    let scratchpad_bits = cfg.scratchpad_bytes as f64 * 8.0;
    let scratchpad = scratchpad_bits * density::SRAM_BIT * um2_to_mm2;

    // Queue controller: per-queue head/tail/count registers (3 × 16 bits)
    // plus per-slot valid bits, with logic overhead.
    let qc_flops = cfg.queues as f64 * (3.0 * 16.0) + cfg.queues as f64 * 64.0;
    let queue_controller = qc_flops * density::FLOP * density::LOGIC_FACTOR * um2_to_mm2;

    // MMU: TLB entries are ~(vpn 27 + ppn 28 + flags 8) bits of CAM+RAM,
    // plus a PTW FSM (~200 flops).
    let tlb_bits = cfg.tlb_entries as f64 * 63.0;
    let mmu = (tlb_bits * density::CAM_BIT + 200.0 * density::FLOP)
        * density::LOGIC_FACTOR
        * um2_to_mm2;

    // Pipelines: buffered ops (3 pipelines × ~4 entries × 80 bits) plus
    // NoC encode/decode.
    let pipe_flops = 3.0 * 4.0 * 80.0 + 300.0;
    let pipelines = pipe_flops * density::FLOP * density::LOGIC_FACTOR * um2_to_mm2;

    // LIMA: command queue + chunk trackers + address generator.
    let lima_flops =
        cfg.lima_cmd_depth as f64 * 120.0 + cfg.lima_chunks_inflight as f64 * 60.0 + 100.0;
    let lima = lima_flops * density::FLOP * density::LOGIC_FACTOR * um2_to_mm2;

    AreaBreakdown {
        scratchpad,
        queue_controller,
        mmu,
        pipelines,
        lima,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_config_is_about_one_percent_of_ariane() {
        let a = engine_area(&MapleConfig::default());
        let frac = a.fraction_of_ariane();
        assert!(
            (0.005..0.02).contains(&frac),
            "expected ≈1.1% of Ariane, got {:.2}%",
            frac * 100.0
        );
    }

    #[test]
    fn area_scales_with_scratchpad() {
        let small = engine_area(&MapleConfig::default());
        let big = engine_area(&MapleConfig {
            scratchpad_bytes: 4096,
            ..MapleConfig::default()
        });
        assert!(big.total() > small.total());
        assert!(big.scratchpad > 3.0 * small.scratchpad);
    }

    #[test]
    fn breakdown_components_positive() {
        let a = engine_area(&MapleConfig::default());
        for v in [a.scratchpad, a.queue_controller, a.mmu, a.pipelines, a.lima] {
            assert!(v > 0.0);
        }
        let sum = a.scratchpad + a.queue_controller + a.mmu + a.pipelines + a.lima;
        assert!((sum - a.total()).abs() < 1e-12);
    }
}
