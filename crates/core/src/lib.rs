//! MAPLE — the Memory Access Parallel-Load Engine.
//!
//! This crate is the paper's primary contribution: a NoC-attached engine
//! that supplies data for decoupled access/execute programs and prefetches
//! loops of indirect memory accesses, **without modifying cores, ISA, or
//! memory hierarchy**. Cores drive it with plain loads and stores to a
//! memory-mapped page ([`mmio`]); internally it is the microarchitecture of
//! the paper's Figure 6 ([`engine::Engine`]): Config/Produce/Consume
//! pipelines, scratchpad circular FIFOs with slot-index transaction IDs
//! ([`queue`]), an MMU with a 16-entry TLB and hardware page-table walker,
//! and the LIMA unit. [`area`] reproduces the Section 5.4 area analysis.
//!
//! # Observability
//!
//! With a [`maple_trace::Tracer`] attached ([`engine::Engine::set_tracer`])
//! the engine emits fetch issue/fill events (with memory latency), queue
//! push/pop events carrying live occupancy, and fault-plane
//! injection/recovery markers (ack drops, fetch retries) — all zero-cost
//! when tracing is disabled.
//!
//! # Example: pointer-produce and consume, engine-level
//!
//! ```
//! use maple_core::engine::{Engine, MapleConfig};
//! use maple_core::mmio::{store_offset, StoreOp};
//! # fn main() {
//! let engine = Engine::new(MapleConfig::default());
//! // A core produces a pointer by storing it at the PRODUCE_PTR offset of
//! // the engine's MMIO page:
//! let offset = store_offset(StoreOp::ProducePtr, 0);
//! assert!(offset < 4096);
//! assert!(engine.is_idle());
//! # }
//! ```

#![deny(missing_docs)]

pub mod area;
pub mod engine;
pub mod mmio;
pub mod queue;

#[cfg(test)]
mod tests;

pub use engine::{Engine, EngineContext, EngineFault, EngineStats, MapleConfig};
