//! Property tests for the scratchpad FIFO queues — the invariants the
//! paper verified with SystemVerilog assertions and JasperGold:
//! no overflow, no underflow, FIFO order, and program-order restoration
//! under arbitrary memory-response reordering.

use maple_core::queue::{FifoQueue, QueueController, QueueError, Slot};
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Debug, Clone)]
enum Op {
    Push(u64),
    Reserve,
    /// Fill the i-th oldest outstanding reservation (mod count).
    Fill(usize, u64),
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u64>().prop_map(Op::Push),
        Just(Op::Reserve),
        (any::<usize>(), any::<u64>()).prop_map(|(i, v)| Op::Fill(i, v)),
        Just(Op::Pop),
    ]
}

proptest! {
    #[test]
    fn queue_matches_reference_model(
        capacity in 1usize..64,
        ops in proptest::collection::vec(op_strategy(), 0..200),
    ) {
        let mut q = FifoQueue::new(capacity, 8);
        // Reference model: FIFO of either a value or a pending ticket.
        let mut model: VecDeque<Option<u64>> = VecDeque::new();
        let outstanding: Vec<(Slot, usize)> = Vec::new(); // (slot, model idx disabled)
        let mut pending_slots: Vec<Slot> = Vec::new();

        for op in ops {
            match op {
                Op::Push(v) => {
                    let expect_full = model.len() >= capacity;
                    match q.push(v) {
                        Ok(()) => {
                            prop_assert!(!expect_full, "push succeeded on full queue");
                            model.push_back(Some(v));
                        }
                        Err(QueueError::Full) => prop_assert!(expect_full),
                        Err(e) => prop_assert!(false, "unexpected error {e:?}"),
                    }
                }
                Op::Reserve => {
                    let expect_full = model.len() >= capacity;
                    match q.reserve() {
                        Ok(slot) => {
                            prop_assert!(!expect_full);
                            model.push_back(None);
                            pending_slots.push(slot);
                        }
                        Err(QueueError::Full) => prop_assert!(expect_full),
                        Err(e) => prop_assert!(false, "unexpected error {e:?}"),
                    }
                }
                Op::Fill(i, v) => {
                    if pending_slots.is_empty() {
                        continue;
                    }
                    let idx = i % pending_slots.len();
                    let slot = pending_slots.remove(idx);
                    q.fill(slot, v);
                    // Patch the model: the idx-th unfilled entry becomes v.
                    let mut seen = 0;
                    for e in &mut model {
                        if e.is_none() {
                            if seen == idx {
                                *e = Some(v);
                                break;
                            }
                            seen += 1;
                        }
                    }
                }
                Op::Pop => {
                    let expect = match model.front() {
                        Some(Some(v)) => Some(*v),
                        _ => None,
                    };
                    let got = q.pop();
                    prop_assert_eq!(got, expect, "pop mismatch");
                    if got.is_some() {
                        model.pop_front();
                    }
                }
            }
            prop_assert_eq!(q.occupancy(), model.len());
            prop_assert_eq!(q.is_full(), model.len() >= capacity);
            let _ = &outstanding;
        }
    }

    #[test]
    fn out_of_order_fills_always_pop_in_program_order(
        values in proptest::collection::vec(any::<u64>(), 1..32),
        order_seed in any::<u64>(),
    ) {
        let n = values.len();
        let mut q = FifoQueue::new(n, 8);
        let slots: Vec<Slot> = (0..n).map(|_| q.reserve().unwrap()).collect();
        // Fill in a pseudo-random order.
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = maple_sim::rng::SimRng::seed(order_seed);
        rng.shuffle(&mut idx);
        for &i in &idx {
            q.fill(slots[i], values[i]);
        }
        // Pops return the original program order.
        for v in &values {
            prop_assert_eq!(q.pop(), Some(*v));
        }
        prop_assert!(q.is_empty());
    }
}

#[test]
fn controller_budget_is_a_hard_invariant() {
    // Exhaustive small-space check: any (count, entries, bytes) whose
    // product exceeds the scratchpad is refused.
    for count in 1..=8usize {
        for entries in [1usize, 8, 16, 32, 64] {
            for bytes in [4u8, 8] {
                let need = (count * entries * usize::from(bytes)) as u64;
                let r = QueueController::new(count, entries, bytes, 1024);
                assert_eq!(r.is_ok(), need <= 1024, "{count}x{entries}x{bytes}");
            }
        }
    }
}
