//! Property tests for the scratchpad FIFO queues — the invariants the
//! paper verified with SystemVerilog assertions and JasperGold:
//! no overflow, no underflow, FIFO order, and program-order restoration
//! under arbitrary memory-response reordering.

use maple_core::queue::{FifoQueue, QueueController, QueueError, Slot};
use maple_testkit::{check, gen, tk_assert, tk_assert_eq, Config, Gen, SimRng};
use std::collections::VecDeque;

#[derive(Debug, Clone)]
enum Op {
    Push(u64),
    Reserve,
    /// Fill the i-th oldest outstanding reservation (mod count).
    Fill(usize, u64),
    Pop,
}

/// Generates queue operations uniformly; shrinks payload values toward
/// zero and indices toward the oldest reservation, and demotes any op to
/// the structurally simplest one (`Pop`).
struct OpGen;

impl Gen for OpGen {
    type Value = Op;

    fn generate(&self, rng: &mut SimRng) -> Op {
        match rng.below(4) {
            0 => Op::Push(rng.next_u64()),
            1 => Op::Reserve,
            2 => Op::Fill(rng.next_u64() as usize, rng.next_u64()),
            _ => Op::Pop,
        }
    }

    fn shrink(&self, value: &Op) -> Vec<Op> {
        let mut out = Vec::new();
        match value {
            Op::Push(v) => {
                out.push(Op::Pop);
                out.extend(gen::shrink_u64(*v).into_iter().take(4).map(Op::Push));
            }
            Op::Reserve => out.push(Op::Pop),
            Op::Fill(i, v) => {
                out.push(Op::Pop);
                out.extend(
                    gen::shrink_u64(*i as u64)
                        .into_iter()
                        .take(2)
                        .map(|i| Op::Fill(i as usize, *v)),
                );
                out.extend(
                    gen::shrink_u64(*v)
                        .into_iter()
                        .take(2)
                        .map(|v| Op::Fill(*i, v)),
                );
            }
            Op::Pop => {}
        }
        out
    }
}

#[test]
fn queue_matches_reference_model() {
    let inputs = (gen::usize_in(1..64), gen::vec_of(OpGen, 0, 200));
    check(&Config::new("queue_matches_reference_model"), &inputs, |input| {
        let (capacity, ops) = input;
        let capacity = *capacity;
        let mut q = FifoQueue::new(capacity, 8);
        // Reference model: FIFO of either a value or a pending ticket.
        let mut model: VecDeque<Option<u64>> = VecDeque::new();
        let mut pending_slots: Vec<Slot> = Vec::new();

        for op in ops {
            match op {
                Op::Push(v) => {
                    let expect_full = model.len() >= capacity;
                    match q.push(*v) {
                        Ok(()) => {
                            tk_assert!(!expect_full, "push succeeded on full queue");
                            model.push_back(Some(*v));
                        }
                        Err(QueueError::Full) => tk_assert!(expect_full),
                        Err(e) => tk_assert!(false, "unexpected error {e:?}"),
                    }
                }
                Op::Reserve => {
                    let expect_full = model.len() >= capacity;
                    match q.reserve() {
                        Ok(slot) => {
                            tk_assert!(!expect_full);
                            model.push_back(None);
                            pending_slots.push(slot);
                        }
                        Err(QueueError::Full) => tk_assert!(expect_full),
                        Err(e) => tk_assert!(false, "unexpected error {e:?}"),
                    }
                }
                Op::Fill(i, v) => {
                    if pending_slots.is_empty() {
                        continue;
                    }
                    let idx = i % pending_slots.len();
                    let slot = pending_slots.remove(idx);
                    q.fill(slot, *v);
                    // Patch the model: the idx-th unfilled entry becomes v.
                    let mut seen = 0;
                    for e in &mut model {
                        if e.is_none() {
                            if seen == idx {
                                *e = Some(*v);
                                break;
                            }
                            seen += 1;
                        }
                    }
                }
                Op::Pop => {
                    let expect = match model.front() {
                        Some(Some(v)) => Some(*v),
                        _ => None,
                    };
                    let got = q.pop();
                    tk_assert_eq!(got, expect, "pop mismatch");
                    if got.is_some() {
                        model.pop_front();
                    }
                }
            }
            tk_assert_eq!(q.occupancy(), model.len());
            tk_assert_eq!(q.is_full(), model.len() >= capacity);
        }
        Ok(())
    });
}

#[test]
fn out_of_order_fills_always_pop_in_program_order() {
    let inputs = (gen::vec_of(gen::u64_any(), 1, 31), gen::u64_any());
    check(
        &Config::new("out_of_order_fills_always_pop_in_program_order"),
        &inputs,
        |(values, order_seed)| {
            let n = values.len();
            let mut q = FifoQueue::new(n, 8);
            let slots: Vec<Slot> = (0..n).map(|_| q.reserve().unwrap()).collect();
            // Fill in a pseudo-random order.
            let mut idx: Vec<usize> = (0..n).collect();
            let mut rng = SimRng::seed(*order_seed);
            rng.shuffle(&mut idx);
            for &i in &idx {
                q.fill(slots[i], values[i]);
            }
            // Pops return the original program order.
            for v in values {
                tk_assert_eq!(q.pop(), Some(*v));
            }
            tk_assert!(q.is_empty());
            Ok(())
        },
    );
}

#[test]
fn controller_budget_is_a_hard_invariant() {
    // Exhaustive small-space check: any (count, entries, bytes) whose
    // product exceeds the scratchpad is refused.
    for count in 1..=8usize {
        for entries in [1usize, 8, 16, 32, 64] {
            for bytes in [4u8, 8] {
                let need = (count * entries * usize::from(bytes)) as u64;
                let r = QueueController::new(count, entries, bytes, 1024);
                assert_eq!(r.is_ok(), need <= 1024, "{count}x{entries}x{bytes}");
            }
        }
    }
}
