//! Virtual address types.

use maple_mem::PAGE_SIZE;

/// A virtual byte address (Sv39: 39 significant bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VAddr(pub u64);

/// A virtual page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VirtPage(pub u64);

impl VAddr {
    /// The virtual page containing this address.
    #[must_use]
    pub fn page(self) -> VirtPage {
        VirtPage(self.0 / PAGE_SIZE)
    }

    /// Offset within the page.
    #[must_use]
    pub fn page_offset(self) -> u64 {
        self.0 % PAGE_SIZE
    }

    /// Address advanced by `n` bytes.
    #[must_use]
    pub fn offset(self, n: u64) -> VAddr {
        VAddr(self.0.wrapping_add(n))
    }

    /// The nine-bit index into the level-`level` table (2 = root).
    ///
    /// # Panics
    ///
    /// Panics if `level > 2`.
    #[must_use]
    pub fn vpn_index(self, level: u8) -> u64 {
        assert!(level <= 2, "Sv39 has three levels (0..=2)");
        (self.0 >> (12 + 9 * u64::from(level))) & 0x1ff
    }
}

impl VirtPage {
    /// The base address of this page.
    #[must_use]
    pub fn base(self) -> VAddr {
        VAddr(self.0 * PAGE_SIZE)
    }
}

impl std::fmt::Display for VAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "va:{:#x}", self.0)
    }
}

impl std::fmt::Display for VirtPage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vpn:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_decomposition() {
        let a = VAddr(0x1_2345);
        assert_eq!(a.page(), VirtPage(0x12));
        assert_eq!(a.page_offset(), 0x345);
        assert_eq!(a.page().base(), VAddr(0x1_2000));
        assert_eq!(a.offset(0x10), VAddr(0x1_2355));
    }

    #[test]
    fn vpn_indices() {
        // va = vpn2:vpn1:vpn0:offset = 3:2:1:0x10
        let a = VAddr((3 << 30) | (2 << 21) | (1 << 12) | 0x10);
        assert_eq!(a.vpn_index(2), 3);
        assert_eq!(a.vpn_index(1), 2);
        assert_eq!(a.vpn_index(0), 1);
    }

    #[test]
    #[should_panic(expected = "three levels")]
    fn bad_level_panics() {
        let _ = VAddr(0).vpn_index(3);
    }

    #[test]
    fn display() {
        assert_eq!(VAddr(0x10).to_string(), "va:0x10");
        assert_eq!(VirtPage(2).to_string(), "vpn:0x2");
    }
}
