//! Page-table-walk timing constants.
//!
//! A hardware PTW performs one memory read per table level. Both the core
//! MMU and the MAPLE MMU charge [`WALK_LEVELS`] sequential reads served at
//! the shared L2 (30 cycles each in the paper's configuration); callers
//! compute the total with [`walk_latency`]. The *functional* walk is
//! [`crate::page_table::PageTable::translate`], executed against the same
//! simulated memory the OS wrote the tables into.

/// Sv39 walk depth.
pub const WALK_LEVELS: u64 = 3;

/// Total PTW latency given the latency of one table-node read.
///
/// # Example
///
/// ```
/// use maple_vm::walker::walk_latency;
///
/// assert_eq!(walk_latency(30), 90);
/// ```
#[must_use]
pub fn walk_latency(per_level_read: u64) -> u64 {
    WALK_LEVELS * per_level_read
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_levels_times_read() {
        assert_eq!(walk_latency(0), 0);
        assert_eq!(walk_latency(1), 3);
        assert_eq!(walk_latency(30), 90);
    }
}
