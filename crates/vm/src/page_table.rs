//! Three-level page tables stored inside simulated physical memory.
//!
//! Table nodes are 4 KiB pages of 512 eight-byte PTEs, allocated from a
//! [`FrameAllocator`], exactly as an OS builds Sv39 tables. Because the
//! tables live in [`PhysMem`], the hardware page-table walkers (core-side
//! and MAPLE-side) walk the same bytes the OS wrote.

use maple_mem::phys::{PAddr, PhysMem, PAGE_SIZE};

use crate::addr::VAddr;

/// Page permission and attribute bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageFlags {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
    /// User-mode accessible.
    pub user: bool,
    /// Memory-mapped IO (MAPLE instance pages); accesses are routed to a
    /// device rather than memory.
    pub mmio: bool,
}

impl PageFlags {
    /// Read-write user data.
    #[must_use]
    pub fn rw() -> Self {
        PageFlags {
            read: true,
            write: true,
            user: true,
            mmio: false,
        }
    }

    /// Read-only user data.
    #[must_use]
    pub fn ro() -> Self {
        PageFlags {
            read: true,
            write: false,
            user: true,
            mmio: false,
        }
    }

    /// A user-mapped MMIO device page (how the OS exposes a MAPLE
    /// instance).
    #[must_use]
    pub fn device() -> Self {
        PageFlags {
            read: true,
            write: true,
            user: true,
            mmio: true,
        }
    }

    fn encode(self) -> u64 {
        (u64::from(self.read) << 1)
            | (u64::from(self.write) << 2)
            | (u64::from(self.user) << 4)
            | (u64::from(self.mmio) << 5)
    }

    fn decode(pte: u64) -> Self {
        PageFlags {
            read: pte & (1 << 1) != 0,
            write: pte & (1 << 2) != 0,
            user: pte & (1 << 4) != 0,
            mmio: pte & (1 << 5) != 0,
        }
    }
}

const PTE_VALID: u64 = 1;
const PTE_PPN_SHIFT: u64 = 10;

/// The reason a translation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageFault {
    /// No valid mapping exists for the page.
    NotMapped(VAddr),
    /// A mapping exists but forbids the attempted access.
    Protection(VAddr),
}

impl std::fmt::Display for PageFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageFault::NotMapped(va) => write!(f, "page fault: {va} not mapped"),
            PageFault::Protection(va) => write!(f, "page fault: {va} protection violation"),
        }
    }
}

impl std::error::Error for PageFault {}

/// A successful translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// The physical address.
    pub paddr: PAddr,
    /// Flags of the containing page.
    pub flags: PageFlags,
}

/// Hands out free physical frames for data pages and page-table nodes.
///
/// A simple bump allocator over a physical range — the simulator's stand-in
/// for the kernel's frame allocator.
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    next: u64,
    limit: u64,
}

impl FrameAllocator {
    /// Manages frames in `[start, start + len)` (byte addresses,
    /// page-aligned).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or unaligned.
    #[must_use]
    pub fn new(start: PAddr, len: u64) -> Self {
        assert!(len >= PAGE_SIZE, "allocator needs at least one frame");
        assert_eq!(start.0 % PAGE_SIZE, 0, "start must be page-aligned");
        FrameAllocator {
            next: start.0,
            limit: start.0 + len,
        }
    }

    /// Allocates one zeroed frame.
    ///
    /// # Panics
    ///
    /// Panics when physical memory is exhausted (simulation
    /// misconfiguration).
    pub fn alloc(&mut self, mem: &mut PhysMem) -> PAddr {
        assert!(
            self.next + PAGE_SIZE <= self.limit,
            "physical memory exhausted"
        );
        let frame = PAddr(self.next);
        self.next += PAGE_SIZE;
        // Ensure the frame reads as zero even if re-used in a later epoch.
        mem.write_bytes(frame, &[0u8; PAGE_SIZE as usize]);
        frame
    }

    /// Bytes still available.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.limit - self.next
    }
}

/// A three-level page table rooted at a physical frame.
///
/// # Example
///
/// ```
/// use maple_mem::phys::{PAddr, PhysMem};
/// use maple_vm::page_table::{FrameAllocator, PageFlags, PageTable};
/// use maple_vm::VAddr;
///
/// let mut mem = PhysMem::new();
/// let mut frames = FrameAllocator::new(PAddr(0x10_0000), 1 << 20);
/// let mut pt = PageTable::new(&mut mem, &mut frames);
/// pt.map(&mut mem, &mut frames, VAddr(0x4000), PAddr(0x8000), PageFlags::rw());
/// let t = pt.translate(&mem, VAddr(0x4008)).unwrap();
/// assert_eq!(t.paddr, PAddr(0x8008));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PageTable {
    root: PAddr,
}

impl PageTable {
    /// Allocates an empty root table.
    #[must_use]
    pub fn new(mem: &mut PhysMem, frames: &mut FrameAllocator) -> Self {
        PageTable {
            root: frames.alloc(mem),
        }
    }

    /// The physical address of the root node (the value an OS would load
    /// into `satp`, and the register the MAPLE driver programs into the
    /// engine's MMU).
    #[must_use]
    pub fn root(&self) -> PAddr {
        self.root
    }

    /// Reconstructs a handle from a raw root address — what a hardware MMU
    /// does when the driver programs its root register.
    #[must_use]
    pub fn from_root(root: PAddr) -> Self {
        PageTable { root }
    }

    fn pte_addr(table: PAddr, index: u64) -> PAddr {
        PAddr(table.0 + index * 8)
    }

    /// Maps the page containing `va` to the frame containing `pa`.
    ///
    /// Remapping an already-mapped page overwrites the mapping (as the
    /// kernel does on `mprotect`/`mmap` over an existing range).
    ///
    /// # Panics
    ///
    /// Panics if `pa` is not page-aligned.
    pub fn map(
        &mut self,
        mem: &mut PhysMem,
        frames: &mut FrameAllocator,
        va: VAddr,
        pa: PAddr,
        flags: PageFlags,
    ) {
        assert_eq!(pa.0 % PAGE_SIZE, 0, "frame must be page-aligned");
        let mut table = self.root;
        for level in [2u8, 1] {
            let slot = Self::pte_addr(table, va.vpn_index(level));
            let pte = mem.read_u64(slot);
            if pte & PTE_VALID == 0 {
                let node = frames.alloc(mem);
                mem.write_u64(slot, (node.0 >> 12) << PTE_PPN_SHIFT | PTE_VALID);
                table = node;
            } else {
                table = PAddr((pte >> PTE_PPN_SHIFT) << 12);
            }
        }
        let leaf = Self::pte_addr(table, va.vpn_index(0));
        mem.write_u64(
            leaf,
            (pa.0 >> 12) << PTE_PPN_SHIFT | flags.encode() | PTE_VALID,
        );
    }

    /// Removes the mapping for the page containing `va`; returns whether a
    /// mapping existed.
    pub fn unmap(&mut self, mem: &mut PhysMem, va: VAddr) -> bool {
        let mut table = self.root;
        for level in [2u8, 1] {
            let pte = mem.read_u64(Self::pte_addr(table, va.vpn_index(level)));
            if pte & PTE_VALID == 0 {
                return false;
            }
            table = PAddr((pte >> PTE_PPN_SHIFT) << 12);
        }
        let leaf = Self::pte_addr(table, va.vpn_index(0));
        let pte = mem.read_u64(leaf);
        if pte & PTE_VALID == 0 {
            return false;
        }
        mem.write_u64(leaf, 0);
        true
    }

    /// Walks the table for `va`.
    ///
    /// This is the functional walk shared by the core PTW, the MAPLE PTW
    /// and the OS fault handler; timing is charged by the caller
    /// ([`crate::walker`]).
    ///
    /// # Errors
    ///
    /// Returns [`PageFault::NotMapped`] when any level is invalid.
    pub fn translate(&self, mem: &PhysMem, va: VAddr) -> Result<Translation, PageFault> {
        let mut table = self.root;
        for level in [2u8, 1] {
            let pte = mem.read_u64(Self::pte_addr(table, va.vpn_index(level)));
            if pte & PTE_VALID == 0 {
                return Err(PageFault::NotMapped(va));
            }
            table = PAddr((pte >> PTE_PPN_SHIFT) << 12);
        }
        let pte = mem.read_u64(Self::pte_addr(table, va.vpn_index(0)));
        if pte & PTE_VALID == 0 {
            return Err(PageFault::NotMapped(va));
        }
        let base = PAddr((pte >> PTE_PPN_SHIFT) << 12);
        Ok(Translation {
            paddr: base.offset(va.page_offset()),
            flags: PageFlags::decode(pte),
        })
    }

    /// Translates and checks the access kind (`write == true` for stores).
    ///
    /// # Errors
    ///
    /// Returns [`PageFault::NotMapped`] for missing mappings and
    /// [`PageFault::Protection`] when permissions forbid the access.
    pub fn translate_checked(
        &self,
        mem: &PhysMem,
        va: VAddr,
        write: bool,
    ) -> Result<Translation, PageFault> {
        let t = self.translate(mem, va)?;
        let ok = if write { t.flags.write } else { t.flags.read };
        if ok {
            Ok(t)
        } else {
            Err(PageFault::Protection(va))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PhysMem, FrameAllocator, PageTable) {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(PAddr(0x100_0000), 8 << 20);
        let pt = PageTable::new(&mut mem, &mut frames);
        (mem, frames, pt)
    }

    #[test]
    fn map_translate_roundtrip() {
        let (mut mem, mut frames, mut pt) = setup();
        pt.map(&mut mem, &mut frames, VAddr(0x4000), PAddr(0x9000), PageFlags::rw());
        let t = pt.translate(&mem, VAddr(0x4abc)).unwrap();
        assert_eq!(t.paddr, PAddr(0x9abc));
        assert!(t.flags.write);
        assert!(!t.flags.mmio);
    }

    #[test]
    fn unmapped_faults() {
        let (mem, _frames, pt) = setup();
        assert_eq!(
            pt.translate(&mem, VAddr(0x7000)),
            Err(PageFault::NotMapped(VAddr(0x7000)))
        );
    }

    #[test]
    fn protection_fault_on_readonly_store() {
        let (mut mem, mut frames, mut pt) = setup();
        pt.map(&mut mem, &mut frames, VAddr(0x1000), PAddr(0x8000), PageFlags::ro());
        assert!(pt.translate_checked(&mem, VAddr(0x1000), false).is_ok());
        assert_eq!(
            pt.translate_checked(&mem, VAddr(0x1000), true),
            Err(PageFault::Protection(VAddr(0x1000)))
        );
        let msg = PageFault::Protection(VAddr(0x1000)).to_string();
        assert!(msg.contains("protection"));
    }

    #[test]
    fn distant_pages_share_nothing() {
        let (mut mem, mut frames, mut pt) = setup();
        // Far apart in vpn2 space: exercises multi-node allocation.
        pt.map(&mut mem, &mut frames, VAddr(0x40_0000_0000), PAddr(0x8000), PageFlags::rw());
        pt.map(&mut mem, &mut frames, VAddr(0x1000), PAddr(0xa000), PageFlags::rw());
        assert_eq!(
            pt.translate(&mem, VAddr(0x40_0000_0010)).unwrap().paddr,
            PAddr(0x8010)
        );
        assert_eq!(pt.translate(&mem, VAddr(0x1004)).unwrap().paddr, PAddr(0xa004));
    }

    #[test]
    fn unmap_then_fault() {
        let (mut mem, mut frames, mut pt) = setup();
        pt.map(&mut mem, &mut frames, VAddr(0x2000), PAddr(0xb000), PageFlags::rw());
        assert!(pt.unmap(&mut mem, VAddr(0x2000)));
        assert!(!pt.unmap(&mut mem, VAddr(0x2000)), "double unmap is no-op");
        assert!(pt.translate(&mem, VAddr(0x2000)).is_err());
    }

    #[test]
    fn remap_overwrites() {
        let (mut mem, mut frames, mut pt) = setup();
        pt.map(&mut mem, &mut frames, VAddr(0x3000), PAddr(0xc000), PageFlags::rw());
        pt.map(&mut mem, &mut frames, VAddr(0x3000), PAddr(0xd000), PageFlags::ro());
        let t = pt.translate(&mem, VAddr(0x3000)).unwrap();
        assert_eq!(t.paddr, PAddr(0xd000));
        assert!(!t.flags.write);
    }

    #[test]
    fn device_flags_roundtrip() {
        let (mut mem, mut frames, mut pt) = setup();
        pt.map(&mut mem, &mut frames, VAddr(0xf000), PAddr(0xe000), PageFlags::device());
        let t = pt.translate(&mem, VAddr(0xf010)).unwrap();
        assert!(t.flags.mmio);
        assert!(t.flags.user);
    }

    #[test]
    fn allocator_exhaustion_panics() {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(PAddr(0x1000), PAGE_SIZE);
        let _ = frames.alloc(&mut mem);
        assert_eq!(frames.remaining(), 0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            frames.alloc(&mut mem)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn two_tables_are_isolated() {
        let (mut mem, mut frames, mut pt1) = setup();
        let mut pt2 = PageTable::new(&mut mem, &mut frames);
        pt1.map(&mut mem, &mut frames, VAddr(0x5000), PAddr(0x9000), PageFlags::rw());
        pt2.map(&mut mem, &mut frames, VAddr(0x5000), PAddr(0xa000), PageFlags::rw());
        assert_eq!(pt1.translate(&mem, VAddr(0x5000)).unwrap().paddr, PAddr(0x9000));
        assert_eq!(pt2.translate(&mem, VAddr(0x5000)).unwrap().paddr, PAddr(0xa000));
    }
}
