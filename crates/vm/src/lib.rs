//! Virtual memory for the MAPLE SoC: Sv39-style page tables, TLBs and a
//! hardware page-table walker.
//!
//! The paper's key systems claim is that MAPLE is a *first-class citizen of
//! virtual memory* (Section 3.5): cores reach a MAPLE instance through a
//! regular MMIO page mapping, and MAPLE itself translates the pointers it is
//! handed using its own 16-entry fully-associative TLB and hardware PTW,
//! raising page-fault interrupts handled by a driver and honouring TLB
//! shootdowns. This crate provides those pieces:
//!
//! - [`addr::VAddr`], [`PageFlags`]: virtual addresses and page permissions
//!   (including the MMIO attribute used for MAPLE instance pages).
//! - [`page_table::PageTable`]: three-level tables that live *inside* the
//!   simulated physical memory, so walks touch real simulated DRAM.
//! - [`tlb::Tlb`]: the 16-entry fully-associative TLB both the Ariane cores
//!   and MAPLE instantiate (Table 2), with LRU replacement and per-page
//!   shootdown.
//! - [`walker`]: walk-depth constants shared by every PTW timing model.

#![deny(missing_docs)]

pub mod addr;
pub mod page_table;
pub mod tlb;
pub mod walker;

pub use addr::{VAddr, VirtPage};
pub use page_table::{FrameAllocator, PageFault, PageFlags, PageTable, Translation};
pub use tlb::Tlb;
