//! Translation lookaside buffers.
//!
//! Both the Ariane cores and each MAPLE engine carry a 16-entry fully
//! associative TLB (Section 3.5 / Table 2). The model uses true LRU and
//! supports the shootdown path: the MAPLE Linux driver registers an MMU
//! notifier whose callbacks invalidate engine-side entries before the
//! kernel reuses a page.

use maple_mem::phys::PAddr;

use crate::addr::VirtPage;
use crate::page_table::PageFlags;

/// A cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// The virtual page.
    pub vpn: VirtPage,
    /// Base of the mapped physical frame.
    pub frame: PAddr,
    /// Page attributes.
    pub flags: PageFlags,
}

/// A fully-associative TLB with true-LRU replacement.
///
/// # Example
///
/// ```
/// use maple_mem::phys::PAddr;
/// use maple_vm::page_table::PageFlags;
/// use maple_vm::tlb::Tlb;
/// use maple_vm::VirtPage;
///
/// let mut tlb = Tlb::new(16);
/// tlb.insert(VirtPage(4), PAddr(0x8000), PageFlags::rw());
/// assert!(tlb.lookup(VirtPage(4)).is_some());
/// tlb.shootdown(VirtPage(4));
/// assert!(tlb.lookup(VirtPage(4)).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<(u64, TlbEntry)>, // (lru stamp, entry)
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB with `capacity` entries (paper: 16).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB needs at least one entry");
        Tlb {
            entries: Vec::with_capacity(capacity),
            capacity,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a virtual page, updating recency and hit/miss counters.
    pub fn lookup(&mut self, vpn: VirtPage) -> Option<TlbEntry> {
        self.clock += 1;
        let clock = self.clock;
        for (stamp, e) in &mut self.entries {
            if e.vpn == vpn {
                *stamp = clock;
                self.hits += 1;
                return Some(*e);
            }
        }
        self.misses += 1;
        None
    }

    /// Probes without counting or touching recency.
    #[must_use]
    pub fn probe(&self, vpn: VirtPage) -> Option<TlbEntry> {
        self.entries.iter().find(|(_, e)| e.vpn == vpn).map(|(_, e)| *e)
    }

    /// Inserts (or refreshes) a translation, evicting LRU when full.
    pub fn insert(&mut self, vpn: VirtPage, frame: PAddr, flags: PageFlags) {
        self.clock += 1;
        let entry = TlbEntry { vpn, frame, flags };
        if let Some((stamp, e)) = self.entries.iter_mut().find(|(_, e)| e.vpn == vpn) {
            *stamp = self.clock;
            *e = entry;
            return;
        }
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(i, _)| i)
                .expect("full TLB is non-empty");
            self.entries.swap_remove(lru);
        }
        self.entries.push((self.clock, entry));
    }

    /// Removes a translation (shootdown); returns whether one existed.
    pub fn shootdown(&mut self, vpn: VirtPage) -> bool {
        let before = self.entries.len();
        self.entries.retain(|(_, e)| e.vpn != vpn);
        self.entries.len() != before
    }

    /// Drops all translations (full flush / context switch).
    pub fn flush_all(&mut self) {
        self.entries.clear();
    }

    /// Resident entry count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookup hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rw() -> PageFlags {
        PageFlags::rw()
    }

    #[test]
    fn insert_lookup_hit_counts() {
        let mut t = Tlb::new(4);
        t.insert(VirtPage(1), PAddr(0x1000), rw());
        assert!(t.lookup(VirtPage(1)).is_some());
        assert!(t.lookup(VirtPage(2)).is_none());
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2);
        t.insert(VirtPage(1), PAddr(0x1000), rw());
        t.insert(VirtPage(2), PAddr(0x2000), rw());
        // Touch 1 so 2 becomes LRU.
        assert!(t.lookup(VirtPage(1)).is_some());
        t.insert(VirtPage(3), PAddr(0x3000), rw());
        assert!(t.probe(VirtPage(1)).is_some());
        assert!(t.probe(VirtPage(2)).is_none(), "LRU entry evicted");
        assert!(t.probe(VirtPage(3)).is_some());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut t = Tlb::new(2);
        t.insert(VirtPage(1), PAddr(0x1000), rw());
        t.insert(VirtPage(1), PAddr(0x9000), PageFlags::ro());
        assert_eq!(t.len(), 1);
        let e = t.probe(VirtPage(1)).unwrap();
        assert_eq!(e.frame, PAddr(0x9000));
        assert!(!e.flags.write);
    }

    #[test]
    fn shootdown_removes_entry() {
        let mut t = Tlb::new(4);
        t.insert(VirtPage(7), PAddr(0x7000), rw());
        assert!(t.shootdown(VirtPage(7)));
        assert!(!t.shootdown(VirtPage(7)));
        assert!(t.lookup(VirtPage(7)).is_none());
    }

    #[test]
    fn flush_all() {
        let mut t = Tlb::new(4);
        for i in 0..4 {
            t.insert(VirtPage(i), PAddr(i * 0x1000), rw());
        }
        assert_eq!(t.len(), 4);
        t.flush_all();
        assert!(t.is_empty());
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut t = Tlb::new(16);
        for i in 0..100 {
            t.insert(VirtPage(i), PAddr(i * 0x1000), rw());
        }
        assert_eq!(t.len(), 16);
        // The 16 most recent survive.
        for i in 84..100 {
            assert!(t.probe(VirtPage(i)).is_some(), "page {i} should survive");
        }
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = Tlb::new(0);
    }
}
