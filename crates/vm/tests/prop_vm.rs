//! Property tests for virtual memory: page tables against a map model,
//! TLBs against the table they cache (shootdown coherence).

use maple_mem::phys::{PAddr, PhysMem, PAGE_SIZE};
use maple_vm::page_table::{FrameAllocator, PageFlags, PageTable};
use maple_vm::tlb::Tlb;
use maple_vm::{VAddr, VirtPage};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
enum VmOp {
    /// Map page `vpn` to a fresh frame.
    Map(u64),
    /// Unmap page `vpn`.
    Unmap(u64),
    /// Translate an address inside page `vpn`.
    Translate(u64, u64),
}

fn vm_ops() -> impl Strategy<Value = Vec<VmOp>> {
    let vpn = 0u64..64;
    let op = prop_oneof![
        vpn.clone().prop_map(VmOp::Map),
        vpn.clone().prop_map(VmOp::Unmap),
        (vpn, 0u64..PAGE_SIZE).prop_map(|(p, o)| VmOp::Translate(p, o)),
    ];
    proptest::collection::vec(op, 0..120)
}

proptest! {
    #[test]
    fn page_table_matches_map_model(ops in vm_ops()) {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(PAddr(0x100_0000), 32 << 20);
        let mut pt = PageTable::new(&mut mem, &mut frames);
        let mut model: HashMap<u64, u64> = HashMap::new(); // vpn -> frame base
        for op in ops {
            match op {
                VmOp::Map(vpn) => {
                    let frame = frames.alloc(&mut mem);
                    pt.map(&mut mem, &mut frames, VAddr(vpn * PAGE_SIZE), frame, PageFlags::rw());
                    model.insert(vpn, frame.0);
                }
                VmOp::Unmap(vpn) => {
                    let existed = pt.unmap(&mut mem, VAddr(vpn * PAGE_SIZE));
                    prop_assert_eq!(existed, model.remove(&vpn).is_some());
                }
                VmOp::Translate(vpn, off) => {
                    let got = pt.translate(&mem, VAddr(vpn * PAGE_SIZE + off));
                    match model.get(&vpn) {
                        Some(frame) => {
                            prop_assert_eq!(got.unwrap().paddr, PAddr(frame + off));
                        }
                        None => prop_assert!(got.is_err()),
                    }
                }
            }
        }
    }

    #[test]
    fn tlb_never_serves_stale_translations(
        ops in proptest::collection::vec((0u64..32, any::<bool>()), 0..200)
    ) {
        // Interleave inserts and shootdowns; a lookup must only ever
        // return what the "page table" (model) currently says.
        let mut tlb = Tlb::new(16);
        let mut table: HashMap<u64, u64> = HashMap::new();
        let mut next_frame = 0x1000u64;
        for (vpn, remap) in ops {
            if remap {
                // Kernel remaps the page: shootdown + new translation.
                tlb.shootdown(VirtPage(vpn));
                next_frame += PAGE_SIZE;
                table.insert(vpn, next_frame);
            }
            // Hardware path: TLB hit must agree with the table; on a
            // miss, walk and refill.
            match tlb.lookup(VirtPage(vpn)) {
                Some(e) => {
                    let expect = table.get(&vpn).copied();
                    prop_assert_eq!(Some(e.frame.0), expect, "stale TLB entry for vpn {}", vpn);
                }
                None => {
                    if let Some(&f) = table.get(&vpn) {
                        tlb.insert(VirtPage(vpn), PAddr(f), PageFlags::rw());
                    }
                }
            }
        }
    }
}

#[test]
fn walk_reads_go_through_simulated_memory() {
    // Corrupting the page-table bytes in memory corrupts translation —
    // proof the walker really reads the simulated table.
    let mut mem = PhysMem::new();
    let mut frames = FrameAllocator::new(PAddr(0x100_0000), 8 << 20);
    let mut pt = PageTable::new(&mut mem, &mut frames);
    let frame = frames.alloc(&mut mem);
    pt.map(&mut mem, &mut frames, VAddr(0x5000), frame, PageFlags::rw());
    assert!(pt.translate(&mem, VAddr(0x5000)).is_ok());
    // Zero the root table: every translation must now fault.
    mem.write_bytes(pt.root(), &[0u8; PAGE_SIZE as usize]);
    assert!(pt.translate(&mem, VAddr(0x5000)).is_err());
}
