//! Property tests for virtual memory: page tables against a map model,
//! TLBs against the table they cache (shootdown coherence).

use maple_mem::phys::{PAddr, PhysMem, PAGE_SIZE};
use maple_testkit::{check, gen, tk_assert, tk_assert_eq, Config, Gen, SimRng};
use maple_vm::page_table::{FrameAllocator, PageFlags, PageTable};
use maple_vm::tlb::Tlb;
use maple_vm::{VAddr, VirtPage};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
enum VmOp {
    /// Map page `vpn` to a fresh frame.
    Map(u64),
    /// Unmap page `vpn`.
    Unmap(u64),
    /// Translate an address inside page `vpn`.
    Translate(u64, u64),
}

/// Generates VM operations over a 64-page window; shrinks page numbers
/// and offsets toward zero and demotes maps/unmaps to translations (the
/// read-only op).
struct VmOpGen;

impl Gen for VmOpGen {
    type Value = VmOp;

    fn generate(&self, rng: &mut SimRng) -> VmOp {
        let vpn = rng.below(64);
        match rng.below(3) {
            0 => VmOp::Map(vpn),
            1 => VmOp::Unmap(vpn),
            _ => VmOp::Translate(vpn, rng.below(PAGE_SIZE)),
        }
    }

    fn shrink(&self, op: &VmOp) -> Vec<VmOp> {
        let mut out = Vec::new();
        match *op {
            VmOp::Map(vpn) => {
                out.push(VmOp::Translate(vpn, 0));
                out.extend(gen::shrink_u64(vpn).into_iter().take(3).map(VmOp::Map));
            }
            VmOp::Unmap(vpn) => {
                out.push(VmOp::Translate(vpn, 0));
                out.extend(gen::shrink_u64(vpn).into_iter().take(3).map(VmOp::Unmap));
            }
            VmOp::Translate(vpn, off) => {
                out.extend(
                    gen::shrink_u64(vpn)
                        .into_iter()
                        .take(2)
                        .map(|v| VmOp::Translate(v, off)),
                );
                out.extend(
                    gen::shrink_u64(off)
                        .into_iter()
                        .take(2)
                        .map(|o| VmOp::Translate(vpn, o)),
                );
            }
        }
        out
    }
}

#[test]
fn page_table_matches_map_model() {
    let ops_gen = gen::vec_of(VmOpGen, 0, 120);
    check(&Config::new("page_table_matches_map_model"), &ops_gen, |ops| {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(PAddr(0x100_0000), 32 << 20);
        let mut pt = PageTable::new(&mut mem, &mut frames);
        let mut model: HashMap<u64, u64> = HashMap::new(); // vpn -> frame base
        for op in ops {
            match *op {
                VmOp::Map(vpn) => {
                    let frame = frames.alloc(&mut mem);
                    pt.map(&mut mem, &mut frames, VAddr(vpn * PAGE_SIZE), frame, PageFlags::rw());
                    model.insert(vpn, frame.0);
                }
                VmOp::Unmap(vpn) => {
                    let existed = pt.unmap(&mut mem, VAddr(vpn * PAGE_SIZE));
                    tk_assert_eq!(existed, model.remove(&vpn).is_some());
                }
                VmOp::Translate(vpn, off) => {
                    let got = pt.translate(&mem, VAddr(vpn * PAGE_SIZE + off));
                    match model.get(&vpn) {
                        Some(frame) => {
                            tk_assert_eq!(got.unwrap().paddr, PAddr(frame + off));
                        }
                        None => tk_assert!(got.is_err()),
                    }
                }
            }
        }
        Ok(())
    });
}

#[test]
fn tlb_never_serves_stale_translations() {
    let ops_gen = gen::vec_of((gen::u64_in(0..32), gen::bools()), 0, 200);
    check(
        &Config::new("tlb_never_serves_stale_translations"),
        &ops_gen,
        |ops| {
            // Interleave inserts and shootdowns; a lookup must only ever
            // return what the "page table" (model) currently says.
            let mut tlb = Tlb::new(16);
            let mut table: HashMap<u64, u64> = HashMap::new();
            let mut next_frame = 0x1000u64;
            for &(vpn, remap) in ops {
                if remap {
                    // Kernel remaps the page: shootdown + new translation.
                    tlb.shootdown(VirtPage(vpn));
                    next_frame += PAGE_SIZE;
                    table.insert(vpn, next_frame);
                }
                // Hardware path: TLB hit must agree with the table; on a
                // miss, walk and refill.
                match tlb.lookup(VirtPage(vpn)) {
                    Some(e) => {
                        let expect = table.get(&vpn).copied();
                        tk_assert_eq!(Some(e.frame.0), expect, "stale TLB entry for vpn {vpn}");
                    }
                    None => {
                        if let Some(&f) = table.get(&vpn) {
                            tlb.insert(VirtPage(vpn), PAddr(f), PageFlags::rw());
                        }
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn tlb_shootdown_on_device_remap_never_serves_stale() {
    // The serving driver's engine-remap flow: an MMIO page moves to a new
    // VA (unmap old + map new + shootdown broadcast to every core and
    // engine TLB). Under random interleavings of remaps and accesses
    // through several independent TLBs, no post-remap access may ever be
    // served by a stale translation — neither at the retired VA (it must
    // fault) nor at the live VA (it must reach the current frame).
    let ops_gen = gen::vec_of((gen::u64_in(0..4), gen::u64_in(0..3), gen::bools()), 0, 160);
    check(
        &Config::new("tlb_shootdown_on_device_remap_never_serves_stale"),
        &ops_gen,
        |ops| {
            let mut mem = PhysMem::new();
            let mut frames = FrameAllocator::new(PAddr(0x100_0000), 32 << 20);
            let mut pt = PageTable::new(&mut mem, &mut frames);
            // 3 TLBs: two "cores" and one "engine", all caching one table.
            let mut tlbs = vec![Tlb::new(16), Tlb::new(16), Tlb::new(4)];
            // 4 devices, each with a fixed frame and a movable VA. VAs are
            // bump-allocated from a window no data mapping uses.
            let dev_frames: Vec<PAddr> = (0..4).map(|_| frames.alloc(&mut mem)).collect();
            let mut dev_vpn = [0u64; 4];
            let mut next_vpn = 0x400u64;
            for (d, &frame) in dev_frames.iter().enumerate() {
                dev_vpn[d] = next_vpn;
                next_vpn += 1;
                pt.map(&mut mem, &mut frames, VAddr(dev_vpn[d] * PAGE_SIZE), frame, PageFlags::device());
            }
            for &(dev, tlb_i, remap) in ops {
                let d = dev as usize;
                if remap {
                    // Driver remap: retire the old VA, bump-allocate a new
                    // one, broadcast the shootdown for the retired page.
                    let old = VirtPage(dev_vpn[d]);
                    tk_assert!(pt.unmap(&mut mem, VAddr(old.0 * PAGE_SIZE)));
                    dev_vpn[d] = next_vpn;
                    next_vpn += 1;
                    pt.map(
                        &mut mem,
                        &mut frames,
                        VAddr(dev_vpn[d] * PAGE_SIZE),
                        dev_frames[d],
                        PageFlags::device(),
                    );
                    for t in &mut tlbs {
                        t.shootdown(old);
                    }
                }
                // Access the device through one TLB at its live VA, and
                // probe every TLB for all retired VPNs of this device.
                let live = VirtPage(dev_vpn[d]);
                let t = &mut tlbs[tlb_i as usize];
                let frame = match t.lookup(live) {
                    Some(e) => e.frame,
                    None => {
                        let tr = pt.translate(&mem, VAddr(live.0 * PAGE_SIZE));
                        let tr = tr.expect("live device VA must be mapped");
                        t.insert(live, tr.paddr, PageFlags::device());
                        tr.paddr
                    }
                };
                tk_assert_eq!(frame, dev_frames[d], "live VA serves the device frame");
                for t in &tlbs {
                    for vpn in 0x400..dev_vpn[d] {
                        if dev_vpn.contains(&vpn) {
                            continue; // another device's live VA
                        }
                        tk_assert!(
                            t.probe(VirtPage(vpn)).is_none(),
                            "retired VA {vpn:#x} still cached after shootdown"
                        );
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn walk_reads_go_through_simulated_memory() {
    // Corrupting the page-table bytes in memory corrupts translation —
    // proof the walker really reads the simulated table.
    let mut mem = PhysMem::new();
    let mut frames = FrameAllocator::new(PAddr(0x100_0000), 8 << 20);
    let mut pt = PageTable::new(&mut mem, &mut frames);
    let frame = frames.alloc(&mut mem);
    pt.map(&mut mem, &mut frames, VAddr(0x5000), frame, PageFlags::rw());
    assert!(pt.translate(&mem, VAddr(0x5000)).is_ok());
    // Zero the root table: every translation must now fault.
    mem.write_bytes(pt.root(), &[0u8; PAGE_SIZE as usize]);
    assert!(pt.translate(&mem, VAddr(0x5000)).is_err());
}
